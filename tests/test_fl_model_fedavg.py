"""Model containers and FedAvg accumulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.fl.fedavg import FedAvgAccumulator, ModelUpdate, federated_average
from repro.fl.model import Model, model_spec


def model_of(*values):
    return Model({"w": np.array(values, dtype=np.float64)})


def test_model_spec_paper_sizes():
    assert model_spec("resnet18").nbytes == 44e6
    assert model_spec("resnet152").nbytes == 232e6
    assert model_spec("resnet152").param_count == 58_000_000
    with pytest.raises(ConfigError):
        model_spec("resnet9000")


def test_model_arithmetic():
    a = model_of(1.0, 2.0)
    b = model_of(3.0, 4.0)
    a.add_scaled_(b, 2.0)
    np.testing.assert_allclose(a["w"], [7.0, 10.0])
    np.testing.assert_allclose(a.scaled(0.5)["w"], [3.5, 5.0])
    np.testing.assert_allclose(b.delta_from(model_of(1.0, 1.0))["w"], [2.0, 3.0])


def test_model_distance_and_allclose():
    a, b = model_of(0.0, 0.0), model_of(3.0, 4.0)
    assert a.distance_to(b) == pytest.approx(5.0)
    assert a.allclose(a.copy())
    assert not a.allclose(b)


def test_model_incompatible_shapes_rejected():
    a = model_of(1.0)
    b = Model({"w": np.zeros((2, 2))})
    with pytest.raises(ConfigError):
        a.add_scaled_(b, 1.0)
    c = Model({"other": np.zeros(1)})
    with pytest.raises(ConfigError):
        a.add_scaled_(c, 1.0)


def test_model_flatten_deterministic_order():
    m = Model({"b": np.array([2.0]), "a": np.array([1.0])})
    np.testing.assert_allclose(m.flatten(), [1.0, 2.0])


def test_empty_model_rejected():
    with pytest.raises(ConfigError):
        Model({})


def test_fedavg_weighted_mean():
    updates = [
        ModelUpdate(model_of(1.0), weight=1.0),
        ModelUpdate(model_of(4.0), weight=3.0),
    ]
    result = federated_average(updates)
    # (1*1 + 4*3) / 4 = 3.25
    np.testing.assert_allclose(result.model["w"], [3.25])
    assert result.weight == pytest.approx(4.0)


def test_fedavg_matches_paper_formula():
    """f = sum(w_k * c_k) / T with T = sum(c_k) (§2.1)."""
    rng = np.random.default_rng(0)
    ws = [rng.standard_normal(6) for _ in range(5)]
    cs = [float(c) for c in rng.integers(1, 100, size=5)]
    updates = [ModelUpdate(Model({"w": w}), weight=c) for w, c in zip(ws, cs)]
    expected = sum(w * c for w, c in zip(ws, cs)) / sum(cs)
    np.testing.assert_allclose(federated_average(updates).model["w"], expected)


def test_eager_equals_lazy():
    rng = np.random.default_rng(1)
    updates = [
        ModelUpdate(Model({"w": rng.standard_normal(8)}), weight=float(i + 1))
        for i in range(7)
    ]
    lazy = federated_average(updates)
    eager = FedAvgAccumulator()
    for u in updates:
        eager.add(u)
    assert eager.result().model.allclose(lazy.model)


def test_hierarchical_composition_equals_flat():
    """Leaf->middle->top composition must equal one-shot FedAvg."""
    rng = np.random.default_rng(2)
    updates = [
        ModelUpdate(Model({"w": rng.standard_normal(4)}), weight=float(rng.integers(1, 20)))
        for _ in range(9)
    ]
    flat = federated_average(updates)
    leaves = [FedAvgAccumulator() for _ in range(3)]
    for i, u in enumerate(updates):
        leaves[i % 3].add(u)
    mid = FedAvgAccumulator()
    for leaf in leaves:
        mid.add(leaf.result())
    top = FedAvgAccumulator()
    top.add(mid.result())
    assert top.result().model.allclose(flat.model)
    assert top.result().weight == pytest.approx(flat.weight)


def test_accumulator_merge():
    rng = np.random.default_rng(3)
    updates = [ModelUpdate(Model({"w": rng.standard_normal(3)}), weight=2.0) for _ in range(4)]
    whole = FedAvgAccumulator()
    for u in updates:
        whole.add(u)
    a, b = FedAvgAccumulator(), FedAvgAccumulator()
    for u in updates[:2]:
        a.add(u)
    for u in updates[2:]:
        b.add(u)
    a.merge(b)
    assert a.result().model.allclose(whole.result().model)
    assert a.count == 4


def test_accumulator_reset_and_empty():
    acc = FedAvgAccumulator()
    assert acc.is_empty
    with pytest.raises(ConfigError):
        acc.result()
    acc.add(ModelUpdate(model_of(1.0), weight=1.0))
    acc.reset()
    assert acc.is_empty and acc.count == 0


def test_update_weight_validation():
    with pytest.raises(ConfigError):
        ModelUpdate(model_of(1.0), weight=0.0)


def test_dummy_parameters_capped():
    m = model_spec("resnet152").dummy_parameters(max_bytes=1e6)
    assert m.nbytes <= 1e6


# ---- vectorized batch folding ---------------------------------------------------


def test_weighted_sum_matches_serial_fold(rng):
    models = [Model({"a": rng.standard_normal(16).astype(np.float32),
                     "b": rng.standard_normal((4, 3)).astype(np.float32)}) for _ in range(10)]
    weights = [float(w) for w in rng.uniform(0.5, 3.0, size=10)]
    batched = Model.weighted_sum(models, weights)
    serial = models[0].scaled(weights[0])
    for m, w in zip(models[1:], weights[1:]):
        serial.add_scaled_(m, w)
    assert batched.allclose(serial)


def test_weighted_sum_validates_inputs():
    m = model_of(1.0)
    with pytest.raises(ConfigError):
        Model.weighted_sum([], [])
    with pytest.raises(ConfigError):
        Model.weighted_sum([m], [1.0, 2.0])
    with pytest.raises(ConfigError):
        Model.weighted_sum([m, Model({"other": np.zeros(3)})], [1.0, 2.0])


def test_add_batch_equals_serial_below_and_above_threshold(rng):
    from repro.fl.fedavg import BATCH_FOLD_THRESHOLD

    for n in (BATCH_FOLD_THRESHOLD - 1, BATCH_FOLD_THRESHOLD + 4):
        updates = [
            ModelUpdate(
                Model({"p": rng.standard_normal(32).astype(np.float32)}),
                weight=float(rng.uniform(0.5, 4.0)),
            )
            for _ in range(n)
        ]
        serial = FedAvgAccumulator()
        for u in updates:
            serial.add(u)
        batched = FedAvgAccumulator()
        batched.add_batch(updates)
        assert batched.count == serial.count == n
        assert batched.total_weight == pytest.approx(serial.total_weight)
        assert batched.result().model.allclose(serial.result().model)


def test_add_batch_folds_into_existing_sum(rng):
    updates = [
        ModelUpdate(
            Model({"p": rng.standard_normal(8).astype(np.float32)}),
            weight=1.0 + i,
        )
        for i in range(12)
    ]
    acc = FedAvgAccumulator()
    acc.add(updates[0])
    acc.add_batch(updates[1:])
    assert acc.result().model.allclose(federated_average(updates).model)


def test_add_batch_empty_is_noop():
    acc = FedAvgAccumulator()
    acc.add_batch([])
    assert acc.is_empty
