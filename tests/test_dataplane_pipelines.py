"""Pipeline cost algebra and the calibrated system pipelines."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.common.units import MB, RESNET152_BYTES, RESNET18_BYTES
from repro.dataplane.calibration import DEFAULT_CALIBRATION, DataplaneCalibration
from repro.dataplane.pipelines import (
    PipelineKind,
    QueuingDesign,
    inter_node_pipeline,
    intra_node_pipeline,
    queuing_pipeline,
)
from repro.dataplane.transfer import Hop, HopCost, Pipeline


def test_hop_cost_affine():
    cost = HopCost(latency_fixed=0.1, latency_per_byte=1e-8, cpu_per_byte=2e-8)
    assert cost.latency(1e8) == pytest.approx(0.1 + 1.0)
    assert cost.cpu(1e8) == pytest.approx(2.0)


def test_hop_cost_rejects_negative():
    with pytest.raises(ConfigError):
        HopCost(latency_fixed=-1.0)


def test_pipeline_sums_hops_and_groups():
    p = Pipeline(
        "test",
        [
            Hop("a", HopCost(latency_fixed=1.0, cpu_fixed=0.5, copies=1), group="base"),
            Hop("b", HopCost(latency_fixed=2.0, cpu_fixed=0.25, copies=1), group="extra"),
        ],
    )
    r = p.cost(0.0)
    assert r.latency == pytest.approx(3.0)
    assert r.cpu_seconds == pytest.approx(0.75)
    assert r.buffer_copies == 2
    assert r.latency_by_group == {"base": 1.0, "extra": 2.0}


def test_pipeline_requires_hops():
    with pytest.raises(ConfigError):
        Pipeline("empty", [])


def test_pipeline_extended_appends():
    base = intra_node_pipeline(PipelineKind.SERVERFUL)
    longer = base.extended("longer", [Hop("x", HopCost(latency_fixed=1.0))])
    assert len(longer) == len(base) + 1
    assert longer.cost(MB).latency == pytest.approx(base.cost(MB).latency + 1.0)


# ---- calibration targets from the paper -----------------------------------

def test_fig7a_lifl_latencies():
    p = intra_node_pipeline(PipelineKind.LIFL)
    assert p.cost(RESNET18_BYTES).latency == pytest.approx(0.14, abs=0.01)
    assert p.cost(RESNET152_BYTES).latency == pytest.approx(0.76, abs=0.01)


def test_fig7a_ratios_at_resnet152():
    lifl = intra_node_pipeline(PipelineKind.LIFL).cost(RESNET152_BYTES).latency
    sf = intra_node_pipeline(PipelineKind.SERVERFUL).cost(RESNET152_BYTES).latency
    sl = intra_node_pipeline(PipelineKind.SERVERLESS).cost(RESNET152_BYTES).latency
    assert sf / lifl == pytest.approx(3.0, rel=0.1)
    assert sl / lifl == pytest.approx(5.8, rel=0.1)
    assert sl / sf == pytest.approx(2.0, rel=0.1)


def test_sl_breakdown_has_sidecar_and_broker_shares():
    r = intra_node_pipeline(PipelineKind.SERVERLESS).cost(RESNET152_BYTES)
    assert r.latency_by_group["sidecar"] > 0
    assert r.latency_by_group["broker"] > 0
    base = intra_node_pipeline(PipelineKind.SERVERFUL).cost(RESNET152_BYTES).latency
    assert r.latency_by_group["base"] == pytest.approx(base, rel=1e-6)


def test_inter_node_resnet152_about_4_2s():
    r = inter_node_pipeline(PipelineKind.LIFL).cost(RESNET152_BYTES)
    assert r.latency == pytest.approx(4.2, abs=0.15)


def test_inter_node_without_wire_is_cheaper():
    with_wire = inter_node_pipeline(PipelineKind.LIFL, include_wire=True).cost(MB)
    without = inter_node_pipeline(PipelineKind.LIFL, include_wire=False).cost(MB)
    assert with_wire.latency > without.latency


def test_queuing_copies_match_fig13b():
    copies = {d: queuing_pipeline(d).cost(MB).buffer_copies for d in QueuingDesign}
    assert copies[QueuingDesign.SF_MONO] == 1
    assert copies[QueuingDesign.LIFL] == 1
    assert copies[QueuingDesign.SF_MICRO] == 2
    assert copies[QueuingDesign.SL_BASIC] == 3


def test_queuing_lifl_equivalent_to_monolith():
    lifl = queuing_pipeline(QueuingDesign.LIFL).cost(RESNET152_BYTES)
    mono = queuing_pipeline(QueuingDesign.SF_MONO).cost(RESNET152_BYTES)
    assert lifl.latency == pytest.approx(mono.latency, rel=0.05)
    assert lifl.cpu_seconds == pytest.approx(mono.cpu_seconds, rel=0.05)


def test_queuing_ratios_at_resnet152():
    lifl = queuing_pipeline(QueuingDesign.LIFL).cost(RESNET152_BYTES)
    slb = queuing_pipeline(QueuingDesign.SL_BASIC).cost(RESNET152_BYTES)
    micro = queuing_pipeline(QueuingDesign.SF_MICRO).cost(RESNET152_BYTES)
    assert slb.latency / lifl.latency == pytest.approx(1.3, abs=0.1)
    assert micro.latency / lifl.latency == pytest.approx(1.7, abs=0.1)
    assert slb.cpu_seconds / lifl.cpu_seconds == pytest.approx(1.5, abs=0.1)
    assert micro.cpu_seconds / lifl.cpu_seconds == pytest.approx(1.9, abs=0.1)


def test_calibration_validate_catches_broken_ordering():
    broken = DataplaneCalibration(shm_write_lat_per_byte=1.0)  # absurdly slow shm
    with pytest.raises(Exception):
        broken.validate()


def test_default_calibration_is_valid():
    DEFAULT_CALIBRATION.validate()


def test_negative_payload_rejected():
    with pytest.raises(ConfigError):
        intra_node_pipeline(PipelineKind.LIFL).cost(-1.0)
