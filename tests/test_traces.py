"""Trace models and SLO analytics: determinism, shape, and accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.traces.models import (
    Trace,
    TraceEvent,
    availability_trace,
    diurnal_trace,
    load_trace,
    merge_traces,
    mmpp_trace,
    poisson_trace,
    save_trace,
)
from repro.traces.slo import LatencyDigest, SloTracker


# ------------------------------------------------------------------ arrivals
@pytest.mark.parametrize(
    "make",
    [
        lambda seed: poisson_trace(10, 300.0, seed=seed),
        lambda seed: diurnal_trace(8, 300.0, amplitude=0.6, period=120.0, seed=seed),
        lambda seed: mmpp_trace(4, 40, 300.0, mean_calm=60, mean_burst=15, seed=seed),
    ],
    ids=["poisson", "diurnal", "mmpp"],
)
def test_generators_replay_byte_identically_from_seed(make):
    a, b = make(7), make(7)
    assert a.events == b.events
    assert a.events != make(8).events  # the seed actually matters


@pytest.mark.parametrize(
    "trace",
    [
        poisson_trace(10, 300.0, seed=1),
        diurnal_trace(8, 300.0, amplitude=0.6, period=120.0, seed=1),
        mmpp_trace(4, 40, 300.0, seed=1),
    ],
    ids=["poisson", "diurnal", "mmpp"],
)
def test_generated_traces_are_valid_timelines(trace):
    trace.validate()  # sorted, in-horizon, sequential round ids
    assert len(trace) > 0
    assert all(0 <= ev.at < trace.horizon for ev in trace)
    assert [ev.round_id for ev in trace] == list(range(len(trace)))


def test_poisson_rate_roughly_matched():
    trace = poisson_trace(rate_per_min=30, horizon=1200.0, seed=3)
    # 30/min over 20 min = 600 expected; allow generous CI slack
    assert 450 < len(trace) < 750


def test_diurnal_rate_actually_swings():
    period = 200.0
    trace = diurnal_trace(
        30, horizon=1000.0, amplitude=0.9, period=period, seed=5
    )
    counts = trace.rate_per_bucket(bucket=period / 2)
    # sin > 0 in the first half-period, < 0 in the second: odd buckets
    # (troughs) must be consistently thinner than even buckets (crests).
    crests = sum(counts[0::2])
    troughs = sum(counts[1::2])
    assert crests > 1.5 * troughs


def test_mmpp_is_burstier_than_poisson_at_same_mean():
    mmpp = mmpp_trace(3, 30, 2000.0, mean_calm=90, mean_burst=30, seed=9)
    counts = np.array(mmpp.rate_per_bucket(bucket=30.0), dtype=float)
    # index of dispersion (var/mean) ~1 for Poisson, >> 1 for MMPP
    assert counts.var() / counts.mean() > 2.0


def test_merge_renumbers_round_ids_per_tenant():
    a = poisson_trace(10, 120.0, seed=1, tenant=0)
    b = poisson_trace(10, 120.0, seed=2, tenant=1)
    merged = merge_traces(a, b)
    merged.validate()
    assert merged.tenants == 2
    assert len(merged) == len(a) + len(b)
    for tenant in (0, 1):
        ids = [ev.round_id for ev in merged if ev.tenant == tenant]
        assert ids == list(range(len(ids)))


def test_validate_rejects_malformed_timelines():
    with pytest.raises(ConfigError):
        Trace(events=[TraceEvent(at=5.0), TraceEvent(at=1.0, round_id=1)], horizon=10.0).validate()
    with pytest.raises(ConfigError):
        Trace(events=[TraceEvent(at=5.0, round_id=3)], horizon=10.0).validate()
    with pytest.raises(ConfigError):
        Trace(events=[TraceEvent(at=50.0)], horizon=10.0).validate()


def test_generator_parameter_validation():
    with pytest.raises(ConfigError):
        poisson_trace(0, 100.0)
    with pytest.raises(ConfigError):
        diurnal_trace(5, 100.0, amplitude=1.0)
    with pytest.raises(ConfigError):
        mmpp_trace(10, 5, 100.0)  # burst must exceed calm


# ------------------------------------------------------------------- loaders
def test_csv_trace_loads_with_and_without_header(tmp_path):
    path = tmp_path / "arrivals.csv"
    path.write_text("at,tenant\n1.5,0\n0.5,1\n2.5,0\n")
    trace = load_trace(str(path))
    trace.validate()
    assert [(ev.at, ev.tenant) for ev in trace] == [(0.5, 1), (1.5, 0), (2.5, 0)]
    bare = tmp_path / "bare.csv"
    bare.write_text("1.0\n2.0\n")
    assert len(load_trace(str(bare))) == 2


def test_jsonl_round_trip(tmp_path):
    original = mmpp_trace(4, 25, 200.0, seed=13)
    path = str(tmp_path / "trace.jsonl")
    save_trace(original, path)
    loaded = load_trace(path, horizon=original.horizon)
    assert loaded.events == original.events


def test_loader_rejects_bad_input(tmp_path):
    empty = tmp_path / "empty.csv"
    empty.write_text("")
    with pytest.raises(ConfigError):
        load_trace(str(empty))
    bad = tmp_path / "trace.xml"
    bad.write_text("<trace/>")
    with pytest.raises(ConfigError):
        load_trace(str(bad))
    nojson = tmp_path / "bad.jsonl"
    nojson.write_text("{not json\n")
    with pytest.raises(ConfigError):
        load_trace(str(nojson))


# ------------------------------------------------------------- availability
def test_availability_trace_deterministic_and_bounded():
    a = availability_trace(20, 500.0, seed=3)
    b = availability_trace(20, 500.0, seed=3)
    assert a.windows == b.windows
    assert len(a.windows) == 20
    for spans in a.windows.values():
        for start, end in spans:
            assert 0.0 <= start < end <= 500.0
        starts = [s for s, _ in spans]
        assert starts == sorted(starts)


def test_availability_queries_are_consistent():
    trace = availability_trace(50, 400.0, seed=7)
    for at in (0.0, 100.0, 399.0):
        up = trace.available(at)
        assert up == [cid for cid in trace.client_ids if trace.is_available(cid, at)]
        assert trace.availability_fraction(at) == pytest.approx(len(up) / 50)


def test_availability_sample_is_seeded_and_capped():
    trace = availability_trace(50, 400.0, seed=7)
    rng_a, rng_b = make_rng(1, "s"), make_rng(1, "s")
    assert trace.sample(100.0, 5, rng_a) == trace.sample(100.0, 5, rng_b)
    picked = trace.sample(100.0, 5, make_rng(2, "s"))
    assert len(picked) <= 5
    assert all(trace.is_available(cid, 100.0) for cid in picked)
    # asking for more than are up returns everyone who is up
    up = trace.available(100.0)
    assert trace.sample(100.0, len(up) + 10, make_rng(3, "s")) == up


def test_day_night_amplitude_modulates_participation():
    period = 400.0
    trace = availability_trace(
        200, 2000.0, seed=11, mean_session=60.0, mean_gap=60.0,
        day_night_amplitude=0.9, period=period,
    )
    # "day" (sin > 0) stretches gaps -> fewer clients up than at "night"
    day = np.mean([trace.availability_fraction(t) for t in (100.0, 500.0, 900.0)])
    night = np.mean([trace.availability_fraction(t) for t in (300.0, 700.0, 1100.0)])
    assert night > day


# ------------------------------------------------------------------- digest
def test_digest_quantiles_track_numpy_within_bucket_error():
    rng = make_rng(5, "lat")
    samples = rng.lognormal(mean=1.0, sigma=0.8, size=20_000)
    digest = LatencyDigest()
    for x in samples:
        digest.add(float(x))
    for q in (0.5, 0.95, 0.99):
        exact = float(np.quantile(samples, q))
        assert digest.quantile(q) == pytest.approx(exact, rel=0.05)
    assert digest.count == len(samples)
    assert digest.mean == pytest.approx(float(samples.mean()), rel=1e-9)


def test_digest_edge_cases():
    digest = LatencyDigest()
    assert digest.quantile(0.5) == 0.0  # empty
    digest.add(0.0)  # below lo clamps into the first bucket
    digest.add(1e9)  # above hi lands in overflow
    assert digest.quantile(0.01) >= 0.0
    assert digest.quantile(1.0) == 1e9  # overflow reports observed max
    with pytest.raises(ConfigError):
        digest.add(-1.0)
    with pytest.raises(ConfigError):
        digest.quantile(1.5)
    with pytest.raises(ConfigError):
        LatencyDigest(lo=0.0)


def test_digest_single_sample_reports_itself():
    digest = LatencyDigest()
    digest.add(2.5)
    # midpoint clamped to [min, max] -> exact for one sample
    assert digest.quantile(0.5) == pytest.approx(2.5)


# ------------------------------------------------------------------ tracker
def test_slo_tracker_attainment_counts_all_offered_rounds():
    tracker = SloTracker(slo_target_s=10.0)
    assert tracker.observe(1.0, 2.0) is True  # 3s <= 10s
    assert tracker.observe(8.0, 4.0) is False  # 12s > 10s
    tracker.abort()
    tracker.reject()
    assert tracker.rounds_total == 4
    assert tracker.attainment == pytest.approx(0.25)
    row = tracker.report()
    assert row["rounds"] == 4
    assert row["completed"] == 2
    assert row["aborted"] == 1
    assert row["rejected"] == 1
    assert row["slo_attainment"] == pytest.approx(0.25)
    assert row["latency_p50_s"] > 0
    assert row["queue_wait_mean_s"] == pytest.approx(4.5)
    assert row["service_mean_s"] == pytest.approx(3.0)


def test_slo_tracker_rejects_bad_target():
    with pytest.raises(ConfigError):
        SloTracker(slo_target_s=0.0)
