"""Units, formatting, and cycle conversions."""

from __future__ import annotations

import pytest

from repro.common import units


def test_model_sizes_match_paper():
    assert units.RESNET18_BYTES == 44e6
    assert units.RESNET34_BYTES == 83e6
    assert units.RESNET152_BYTES == 232e6


def test_cycles_roundtrip():
    secs = 0.875
    gc = units.cpu_seconds_to_gcycles(secs)
    assert units.gcycles_to_cpu_seconds(gc) == pytest.approx(secs)


def test_gcycles_at_testbed_clock():
    # 1 second at 2.8 GHz is 2.8 G-cycles.
    assert units.cpu_seconds_to_gcycles(1.0) == pytest.approx(2.8)


@pytest.mark.parametrize(
    "value,expected",
    [
        (232e6, "232.0MB"),
        (1.5e9, "1.50GB"),
        (2048.0, "2.0KB"),
        (12.0, "12B"),
    ],
)
def test_fmt_bytes(value, expected):
    assert units.fmt_bytes(value) == expected


@pytest.mark.parametrize(
    "value,expected",
    [
        (2 * 3600.0, "2.00h"),
        (90.0, "1.5min"),
        (44.9, "44.9s"),
        (0.017, "17.0ms"),
        (5e-5, "50.0us"),
    ],
)
def test_fmt_duration(value, expected):
    assert units.fmt_duration(value) == expected
