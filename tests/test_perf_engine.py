"""The allocation-lean engine paths and the repro.perf telemetry."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.cluster.network import ProcessorSharingLink
from repro.perf.counters import EngineCounters, collect
from repro.sim.engine import Environment, Interrupt
from repro.sim.resources import Store


# ---- counters -------------------------------------------------------------------


def test_counters_track_heap_traffic(env):
    def p():
        yield env.timeout(1.0)
        yield env.timeout(2.0)

    env.process(p())
    env.run()
    # Initialize + two timeouts + synchronous process completion (no
    # terminal event): three pushes, three pops, three processed.
    assert env.heap_pushes == 3
    assert env.heap_pops == 3
    assert env.events_processed == 3
    assert env.dead_timer_skips == 0
    assert env.peak_queue_depth >= 1


def test_cancel_skips_event_without_processing(env):
    fired = []
    t1 = env.timeout(1.0)
    t1.callbacks.append(lambda e: fired.append("t1"))
    t2 = env.timeout(2.0)
    t2.callbacks.append(lambda e: fired.append("t2"))
    env.cancel(t1)
    env.run()
    assert fired == ["t2"]
    assert not t1.processed
    assert env.dead_timer_skips == 1
    assert env.timers_cancelled == 1
    assert env.events_processed == 1


def test_cancel_rejects_unscheduled_and_processed_events(env):
    ev = env.event()
    with pytest.raises(SimulationError):
        env.cancel(ev)  # never triggered
    t = env.timeout(0.0)
    env.run()
    with pytest.raises(SimulationError):
        env.cancel(t)  # already processed


def test_peek_skips_cancelled_head(env):
    t1 = env.timeout(1.0)
    env.timeout(5.0)
    env.cancel(t1)
    assert env.peek() == pytest.approx(5.0)


def test_collector_aggregates_across_environments():
    with collect() as perf:
        for _ in range(3):
            env = Environment()
            env.timeout(1.0)
            env.run()
    counters = perf.counters()
    assert counters.environments == 3
    assert counters.events_processed == 3
    assert counters.heap_pushes == 3


def test_collector_inactive_means_no_registration():
    env = Environment()
    env.timeout(1.0)
    env.run()
    with collect() as perf:
        pass
    assert perf.counters().environments == 0


def test_counters_from_environment_snapshot(env):
    env.timeout(0.5)
    env.run()
    snap = EngineCounters.from_environment(env)
    assert snap.events_processed == 1
    assert snap.environments == 1


# ---- allocation-lean process paths ----------------------------------------------


def test_process_completion_is_synchronous_no_terminal_event(env):
    def p():
        yield env.timeout(1.0)
        return "done"

    proc = env.process(p())
    env.run()
    assert proc.processed
    assert proc.value == "done"
    # Initialize + one timeout only: the completion itself pushed nothing.
    assert env.heap_pushes == 2


def test_waiter_resumes_after_synchronous_completion(env):
    trace = []

    def worker():
        yield env.timeout(1.0)
        return 41

    def waiter(proc):
        value = yield proc
        trace.append(value + 1)

    proc = env.process(worker())
    env.process(waiter(proc))
    env.run()
    assert trace == [42]


def test_immediate_event_reused_between_processed_waits(env):
    done = env.timeout(1.0)

    def p():
        yield env.timeout(2.0)  # let `done` process first
        for _ in range(3):
            yield done  # already processed: immediate-resume path

    env.process(p())
    env.run()
    # The first immediate wait allocates the per-process event, the next
    # two reuse it.
    assert env.immediate_reuses == 2


def test_delayed_process_start(env):
    trace = []

    def p():
        trace.append(env.now)
        yield env.timeout(1.0)
        trace.append(env.now)

    env.process(p(), delay=5.0)
    assert trace == []  # not started synchronously
    env.run()
    assert trace == [5.0, 6.0]


def test_negative_process_delay_rejected(env):
    def p():
        yield env.timeout(0.0)

    with pytest.raises(SimulationError):
        env.process(p(), delay=-1.0)


def test_failing_process_still_propagates(env):
    def bad():
        yield env.timeout(1.0)
        raise ValueError("boom")

    env.process(bad())
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_waiter_catches_failure_of_synchronously_finished_process(env):
    caught = []

    def bad():
        yield env.timeout(1.0)
        raise ValueError("boom")

    def waiter(proc):
        try:
            yield proc
        except ValueError as exc:
            caught.append(str(exc))

    proc = env.process(bad())
    env.process(waiter(proc))
    env.run()
    assert caught == ["boom"]


# ---- store fast paths -----------------------------------------------------------


def test_store_put_nowait_delivers_without_put_event(env):
    store = Store(env)
    pushes_before = env.heap_pushes
    store.put_nowait("a")
    assert env.heap_pushes == pushes_before  # no event scheduled
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    env.process(consumer())
    env.run()
    assert got == ["a"]


def test_store_put_nowait_wakes_waiting_getter(env):
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    env.process(consumer())
    env.run()  # consumer parks on the empty store
    store.put_nowait("x")
    env.run()
    assert got == ["x"]


def test_store_put_nowait_full_store_raises(env):
    store = Store(env, capacity=1)
    store.put_nowait("a")
    with pytest.raises(SimulationError):
        store.put_nowait("b")


def test_store_get_put_fifo_order_preserved(env):
    store = Store(env)
    for item in ("a", "b", "c"):
        store.put_nowait(item)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(consumer())
    env.run()
    assert got == ["a", "b", "c"]


# ---- dead-timer fix on the PS link ----------------------------------------------


def test_ps_link_cancels_superseded_timers(env):
    """Every arrival retimes the completion timer; the superseded timer
    must be skipped dead, not processed (satellite: dead-timer fix)."""
    link = ProcessorSharingLink(env, capacity_bps=100.0)

    def feeder():
        for _ in range(5):
            link.transfer(1000.0)
            yield env.timeout(1.0)

    env.process(feeder())
    env.run()
    assert link.active_flows == 0
    # 4 of the 5 arrivals superseded a pending timer.
    assert env.timers_cancelled == 4
    assert env.dead_timer_skips == 4
    # Conservation: pops == pushes once the queue drained.
    assert env.heap_pops == env.heap_pushes
    assert env.events_processed == env.heap_pops - env.dead_timer_skips


# ---- review regressions ---------------------------------------------------------


def test_run_until_deadline_ignores_cancelled_head(env):
    """A cancelled entry inside the deadline must not admit processing of a
    live event beyond it (and the clock must never move backwards)."""
    t1 = env.timeout(1.0)
    fired = []
    t10 = env.timeout(10.0)
    t10.callbacks.append(lambda e: fired.append(env.now))
    env.cancel(t1)
    env.run(until=5.0)
    assert fired == []
    assert env.now == 5.0
    env.run()
    assert fired == [10.0]


def test_interrupt_before_delayed_start(env):
    """Interrupting a delay-started process before its start retires the
    pending Initialize; the interrupt fails the process immediately."""
    def p():
        yield env.timeout(1.0)

    proc = env.process(p(), delay=5.0)
    caught = []

    def waiter():
        try:
            yield proc
        except Interrupt as exc:
            caught.append(exc.cause)

    env.process(waiter())
    proc.interrupt("early")
    env.run()
    assert caught == ["early"]
    assert proc.processed
    assert env.now < 5.0 or env.now == 5.0  # no crash at the dead Initialize


def test_yielding_non_event_with_env_attribute_raises_simulation_error(env):
    from repro.sim.resources import Store

    store = Store(env)  # has .env but is not an Event

    def p():
        yield store

    env.process(p())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()
