"""Property tests for chaos rounds (hypothesis-style seeded sweep).

For *random* fault plans — crashes, dropout waves, NIC degradation,
partitions, stragglers, in any combination — a round must either complete
with at least the quorum aggregated or raise a typed ``RoundAbort``.  It
must never hang (a hang surfaces as the engine's deadlock
``SimulationError``, which this test would report as a failure) and never
double-count: the weight the top aggregator emits equals the number of
client updates actually folded in, crash-restarts notwithstanding.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import FaultInjector, random_fault_plan
from repro.common.errors import RoundAbort
from repro.common.rng import make_rng
from repro.common.units import RESNET152_BYTES
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.workloads.arrival import concurrent_arrivals

N_NODES = 8
BATCH = 24
QUORUM_FRACTION = 0.5


def _run_chaos_round(plan_seed: int, reactive: bool) -> tuple:
    overrides = {"lifecycle_stage": "resilient"}
    if reactive:
        # exercise the create-on-delivery path too: leaves whose whole
        # input died must still be force-created to emit
        overrides.update(prewarm=False, reuse=False)
    cfg = PlatformConfig.lifl(**overrides)
    nodes = [f"node{i:02d}" for i in range(N_NODES)]
    platform = AggregationPlatform(cfg, node_names=nodes)
    arrivals = [
        (t, 1.0)
        for t in concurrent_arrivals(BATCH, jitter=3.0, rng=make_rng(plan_seed, "parr"))
    ]
    plan = random_fault_plan(
        make_rng(plan_seed, "pplan"),
        nodes,
        horizon=25.0,
        seed=plan_seed,
        quorum_fraction=QUORUM_FRACTION,
        heartbeat_timeout=3.0,
        sweep_interval=0.75,
    )
    injector = FaultInjector(plan)
    result = platform.run_round(
        arrivals,
        RESNET152_BYTES,
        include_eval=False,
        record_timeline=False,
        injector=injector,
    )
    return result, injector


@given(st.integers(min_value=0, max_value=10_000), st.booleans())
@settings(max_examples=60, deadline=None)
def test_random_fault_plans_complete_at_quorum_or_abort_typed(plan_seed, reactive):
    quorum = math.ceil(QUORUM_FRACTION * BATCH)
    try:
        result, injector = _run_chaos_round(plan_seed, reactive)
    except RoundAbort as abort:
        # the typed failure path: quorum arithmetic must be honest
        assert abort.total == BATCH
        assert abort.quorum == quorum
        assert abort.survivors < quorum
        return
    # the success path: quorum met, nothing double-counted
    assert result.updates_aggregated >= quorum
    assert result.updates_aggregated <= BATCH
    assert result.updates_aggregated == BATCH - result.clients_dropped
    # §3 no-double-count invariant under restarts/partitions/rate changes:
    # every aggregated update contributes its weight exactly once
    assert result.total_weight == float(result.updates_aggregated)
    assert result.aggregator_restarts == injector.report.crashes_injected
