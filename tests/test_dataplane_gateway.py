"""Gateway vertical scaling."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.common.units import MB
from repro.dataplane.calibration import DEFAULT_CALIBRATION
from repro.dataplane.gateway import VerticalScaler


def make_scaler(**kw) -> VerticalScaler:
    return VerticalScaler(DEFAULT_CALIBRATION, **kw)


def test_min_cores_at_zero_load():
    assert make_scaler().cores_for_load(0.0) == 1


def test_scales_with_load():
    s = make_scaler()
    low = s.cores_for_load(100 * MB)
    high = s.cores_for_load(2000 * MB)
    assert high > low


def test_caps_at_max_cores():
    s = make_scaler(max_cores=4)
    assert s.cores_for_load(1e12) == 4


def test_headroom_inflates_requirement():
    tight = VerticalScaler(DEFAULT_CALIBRATION, headroom=1.0, max_cores=100)
    slack = VerticalScaler(DEFAULT_CALIBRATION, headroom=2.0, max_cores=100)
    load = 10 * DEFAULT_CALIBRATION.gateway_core_service_bps
    assert slack.cores_for_load(load) >= tight.cores_for_load(load)


def test_bottleneck_detection():
    s = make_scaler()
    rate = s.service_rate(2)
    assert not s.is_bottleneck(rate * 0.9, 2)
    assert s.is_bottleneck(rate * 1.1, 2)


def test_validation():
    with pytest.raises(ConfigError):
        make_scaler(min_cores=0)
    with pytest.raises(ConfigError):
        make_scaler(headroom=0.5)
    with pytest.raises(ConfigError):
        make_scaler().cores_for_load(-1.0)
