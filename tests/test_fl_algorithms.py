"""Server optimizers (Reddi et al.) and FedProx."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.fl.algorithms import (
    FedAdagrad,
    FedAdam,
    FedAvgServer,
    FedYogi,
    fedprox_proximal_gradient,
    make_server_optimizer,
)
from repro.fl.fedavg import ModelUpdate
from repro.fl.model import Model


def m(*vals):
    return Model({"w": np.array(vals, dtype=np.float64)})


def test_fedavg_server_adopts_average():
    out = FedAvgServer().step(m(0.0), ModelUpdate(m(5.0), weight=2.0))
    np.testing.assert_allclose(out["w"], [5.0])


def test_adaptive_step_moves_toward_average():
    for cls in (FedAdagrad, FedAdam, FedYogi):
        opt = cls(eta=0.1)
        g = m(0.0, 0.0)
        avg = ModelUpdate(m(1.0, -1.0), weight=1.0)
        out = opt.step(g, avg)
        assert out["w"][0] > 0.0, cls.__name__
        assert out["w"][1] < 0.0, cls.__name__


def test_adaptive_repeated_steps_converge_toward_target():
    opt = FedAdam(eta=0.3)
    g = m(0.0)
    target = m(1.0)
    for _ in range(200):
        g = opt.step(g, ModelUpdate(target, weight=1.0))
    assert abs(float(g["w"][0]) - 1.0) < 0.2


def test_fedadagrad_accumulates_v_monotonically():
    opt = FedAdagrad(eta=1.0)
    g = m(0.0)
    g1 = opt.step(g, ModelUpdate(m(1.0), weight=1.0))
    v_after_1 = opt._v["w"].copy()  # noqa: SLF001
    opt.step(g1, ModelUpdate(m(2.0), weight=1.0))
    assert np.all(opt._v["w"] >= v_after_1)  # noqa: SLF001


def test_optimizer_factory():
    assert isinstance(make_server_optimizer("fedavg"), FedAvgServer)
    assert isinstance(make_server_optimizer("FedYogi"), FedYogi)
    opt = make_server_optimizer("fedadam", eta=0.5)
    assert opt.eta == 0.5
    with pytest.raises(ConfigError):
        make_server_optimizer("sgd")


def test_adaptive_validation():
    with pytest.raises(ConfigError):
        FedAdam(beta1=1.0)
    with pytest.raises(ConfigError):
        FedAdam(eta=0.0)


def test_fedprox_gradient_pulls_toward_global():
    local, global_m = m(2.0), m(0.0)
    prox = fedprox_proximal_gradient(local, global_m, mu=0.5)
    np.testing.assert_allclose(prox["w"], [1.0])  # mu * (w - w_global)
    with pytest.raises(ConfigError):
        fedprox_proximal_gradient(local, global_m, mu=-1.0)
