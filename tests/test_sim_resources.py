"""Resource, PriorityResource, Container, Store semantics."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.sim.resources import Container, PriorityResource, Resource, Store


def test_resource_grants_up_to_capacity(env):
    res = Resource(env, capacity=2)
    order = []

    def user(name, hold):
        req = res.request()
        yield req
        order.append((name, env.now))
        yield env.timeout(hold)
        res.release(req)

    for name, hold in [("a", 5.0), ("b", 5.0), ("c", 1.0)]:
        env.process(user(name, hold))
    env.run()
    # c waits for a slot: granted when a or b releases at t=5
    assert order == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_resource_fifo_queue(env):
    res = Resource(env, capacity=1)
    granted = []

    def user(name):
        req = res.request()
        yield req
        granted.append(name)
        yield env.timeout(1.0)
        res.release(req)

    for name in "abcd":
        env.process(user(name))
    env.run()
    assert granted == list("abcd")


def test_resource_capacity_validation(env):
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_release_of_queued_request_cancels_it(env):
    res = Resource(env, capacity=1)
    held = res.request()
    assert held.triggered
    queued = res.request()
    assert not queued.triggered
    res.release(queued)  # cancel while waiting
    res.release(held)
    assert res.count == 0


def test_priority_resource_orders_by_priority(env):
    res = PriorityResource(env, capacity=1)
    granted = []

    def user(name, prio, delay):
        yield env.timeout(delay)
        req = res.request(priority=prio)
        yield req
        granted.append(name)
        yield env.timeout(10.0)
        res.release(req)

    env.process(user("first", 5.0, 0.0))  # takes the slot
    env.process(user("low", 5.0, 1.0))
    env.process(user("high", 0.0, 2.0))
    env.run()
    assert granted == ["first", "high", "low"]


def test_container_get_blocks_until_level(env):
    tank = Container(env, capacity=100.0, init=0.0)
    got = []

    def consumer():
        yield tank.get(30.0)
        got.append(env.now)

    def producer():
        yield env.timeout(2.0)
        tank.put(50.0)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [2.0]
    assert tank.level == pytest.approx(20.0)


def test_container_overflow_rejected(env):
    tank = Container(env, capacity=10.0, init=5.0)
    with pytest.raises(SimulationError):
        tank.put(6.0)


def test_container_invalid_init(env):
    with pytest.raises(SimulationError):
        Container(env, capacity=1.0, init=2.0)


def test_store_fifo_order(env):
    store = Store(env)
    received = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(consumer())
    for item in ("x", "y", "z"):
        store.put(item)
    env.run()
    assert received == ["x", "y", "z"]


def test_store_get_blocks_until_put(env):
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(3.0)
        store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(3.0, "late")]


def test_store_try_get_nonblocking(env):
    store = Store(env)
    assert store.try_get() is None
    store.put("a")
    env.run()
    assert store.try_get() == "a"
    assert store.try_get() is None


def test_store_bounded_capacity_blocks_putter(env):
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put("one")
        times.append(env.now)
        yield store.put("two")  # blocks until consumer takes "one"
        times.append(env.now)

    def consumer():
        yield env.timeout(4.0)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [0.0, 4.0]
