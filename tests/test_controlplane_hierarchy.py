"""Hierarchy planning: two-level k-ary trees, validation, routes."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.controlplane.hierarchy import (
    AggregatorSpec,
    HierarchyPlan,
    Role,
    plan_hierarchy,
    plan_node_hierarchy,
)


def test_node_hierarchy_sizing_follows_q_over_i():
    nh = plan_node_hierarchy("n", pending_updates=20, updates_per_leaf=2)
    assert nh.leaf_count == 10
    assert not nh.collapsed
    assert nh.aggregator_count == 11  # 10 leaves + middle


def test_node_hierarchy_rounds_up():
    nh = plan_node_hierarchy("n", pending_updates=5, updates_per_leaf=2)
    assert nh.leaf_count == 3


def test_node_hierarchy_collapses_small_queue():
    nh = plan_node_hierarchy("n", pending_updates=2, updates_per_leaf=2)
    assert nh.collapsed
    assert nh.aggregator_count == 1


def test_node_hierarchy_zero_pending():
    nh = plan_node_hierarchy("n", 0)
    assert nh.leaf_count == 0 and nh.collapsed


def test_node_hierarchy_validation():
    with pytest.raises(ConfigError):
        plan_node_hierarchy("n", -1)
    with pytest.raises(ConfigError):
        plan_node_hierarchy("n", 5, updates_per_leaf=0)


def test_plan_single_node_structure():
    plan = plan_hierarchy({"node0": 20}, updates_per_leaf=2)
    assert plan.top_node == "node0"
    assert len(plan.by_role(Role.LEAF)) == 10
    assert len(plan.by_role(Role.MIDDLE)) == 1
    assert len(plan.by_role(Role.TOP)) == 1
    plan.validate()


def test_plan_leaf_fan_ins_cover_pending():
    plan = plan_hierarchy({"node0": 7}, updates_per_leaf=2)
    leaf_total = sum(a.fan_in for a in plan.by_role(Role.LEAF))
    assert leaf_total == 7


def test_plan_multi_node_top_on_largest_queue():
    plan = plan_hierarchy({"node0": 4, "node1": 12, "node2": 4})
    assert plan.top_node == "node1"
    assert plan.top.fan_in == 3  # one intermediate per active node


def test_plan_respects_explicit_top_node():
    plan = plan_hierarchy({"node0": 4, "node1": 12}, top_node="node0")
    assert plan.top_node == "node0"
    with pytest.raises(ConfigError):
        plan_hierarchy({"node0": 4}, top_node="ghost")


def test_plan_empty_when_no_pending():
    plan = plan_hierarchy({"node0": 0})
    assert not plan.aggregators


def test_routes_map_child_to_parent():
    plan = plan_hierarchy({"node0": 8})
    routes = plan.routes()
    mid = plan.by_role(Role.MIDDLE)[0]
    top = plan.top
    for leaf in plan.by_role(Role.LEAF):
        assert routes[leaf.agg_id] == mid.agg_id
    assert routes[mid.agg_id] == top.agg_id
    assert top.agg_id not in routes


def test_collapsed_node_reports_straight_to_top():
    plan = plan_hierarchy({"node0": 20, "node1": 2})
    node1_aggs = plan.on_node("node1")
    assert len(node1_aggs) == 1
    assert node1_aggs[0].parent == plan.top.agg_id


def test_round_id_gives_fresh_agg_ids():
    p0 = plan_hierarchy({"node0": 4}, round_id=0)
    p1 = plan_hierarchy({"node0": 4}, round_id=1)
    assert set(p0.aggregators).isdisjoint(set(p1.aggregators))


def test_validate_rejects_orphan_parent():
    plan = HierarchyPlan()
    plan.aggregators["top"] = AggregatorSpec("top", Role.TOP, "n0", 1)
    plan.aggregators["leaf"] = AggregatorSpec("leaf", Role.LEAF, "n0", 2, parent="ghost")
    with pytest.raises(ConfigError):
        plan.validate()


def test_validate_rejects_two_tops():
    plan = HierarchyPlan()
    plan.aggregators["t1"] = AggregatorSpec("t1", Role.TOP, "n0", 1)
    plan.aggregators["t2"] = AggregatorSpec("t2", Role.TOP, "n0", 1)
    with pytest.raises(ConfigError):
        plan.validate()


def test_spec_validation():
    with pytest.raises(ConfigError):
        AggregatorSpec("x", Role.TOP, "n0", fan_in=1, parent="y")
    with pytest.raises(ConfigError):
        AggregatorSpec("x", Role.LEAF, "n0", fan_in=1)  # leaf needs parent
    with pytest.raises(ConfigError):
        AggregatorSpec("x", Role.TOP, "n0", fan_in=0)
