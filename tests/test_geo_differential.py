"""Differential + property tests for the geo federation (repro.geo).

The three invariants the federation's correctness rests on, each driven
by hypothesis over seeds and topology shapes:

* **regions=1 ≡ sequential replay** — a one-region, zero-WAN topology is
  the unsharded :class:`~repro.traces.replay.TraceReplayEngine`, byte
  for byte: identical round timelines and identical SLO reports;
* **weight conservation across the WAN boundary** — the weight shipped
  to the root equals exactly the completed weight served outside the
  root, pair by pair, with nothing minted or lost at the boundary;
* **failover is complete-or-abort and never hangs** — under a region
  partition every routed arrival reaches a terminal state (settled,
  aborted, rejected, or shed), drained tenants are served in the
  fallback region for the window's duration, and routing partitions the
  trace exactly (every event served in exactly one region).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.plan import FaultPlan, PartitionWindow
from repro.common.errors import ConfigError
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.geo import (
    GeoReplayEngine,
    RegionTopology,
    WanLink,
    route_trace,
    validate_geo_faults,
)
from repro.traces.models import merge_traces, poisson_trace
from repro.traces.replay import ReplayConfig, TraceReplayEngine

REGIONS = ("us", "eu", "ap")
HORIZON = 90.0
N_TENANTS = 4


def _trace(seed: int):
    return merge_traces(
        *[
            poisson_trace(6.0, HORIZON, seed=seed, tenant=t)
            for t in range(N_TENANTS)
        ]
    )


def _config() -> ReplayConfig:
    return ReplayConfig(
        round_updates=3,
        nbytes=1e6,
        max_inflight=2,
        queue_limit=4,
        slo_target_s=8.0,
        arrival_spread_s=0.5,
    )


def _platform(region: str = "") -> AggregationPlatform:
    prefix = f"{region}-" if region else ""
    return AggregationPlatform(
        PlatformConfig.lifl(), node_names=[f"{prefix}node{i}" for i in range(3)]
    )


def _topology(n: int, zero_wan: bool = False) -> RegionTopology:
    regions = REGIONS[:n]
    fallbacks = (
        {r: regions[(i + 1) % n] for i, r in enumerate(regions)} if n > 1 else {}
    )
    return RegionTopology(
        regions,
        fallbacks=fallbacks,
        default_latency_s=0.0 if zero_wan else 0.03,
        default_capacity_bps=1.25e8,
    )


def _timeline(result):
    return [
        (r.tenant, r.round_id, r.arrival_at, r.admit_at, r.complete_at,
         r.aborted, r.rejected, r.shed, r.deferred, tuple(r.participants))
        for r in result.records
    ]


# ------------------------------------------------- regions=1 == sequential
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**20))
def test_one_region_zero_wan_is_byte_identical_to_sequential_replay(seed: int):
    trace = _trace(seed)
    plain = TraceReplayEngine(_platform(), trace, _config(), seed=seed).run()
    geo = GeoReplayEngine(
        _topology(1, zero_wan=True),
        lambda region: _platform(),
        trace,
        _config(),
        seed=seed,
    ).run()
    assert geo.merged.row() == plain.row()
    assert _timeline(geo.merged) == _timeline(plain)
    assert geo.merged.slo.report() == plain.slo.report()
    assert geo.shipments == [] and geo.row()["wan_flows"] == 0


# --------------------------------------------------- WAN weight conservation
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**20), n_regions=st.sampled_from((2, 3)))
def test_wan_ships_exactly_the_completed_non_root_weight(seed: int, n_regions: int):
    topology = _topology(n_regions)
    result = GeoReplayEngine(
        topology, lambda region: _platform(region), _trace(seed), _config(), seed=seed
    ).run()
    expected: dict[tuple[str, str], float] = {}
    for rep in result.regions:
        if rep.region == topology.root:
            continue
        done = sum(
            sum(w for _, w in rec.participants)
            for rec in rep.result.records
            if not (rec.aborted or rec.rejected or rec.shed)
        )
        if done:
            expected[(rep.region, topology.root)] = done
    by_pair = result.wan_weight_by_pair()
    assert set(by_pair) == set(expected)
    for pair, weight in expected.items():
        assert abs(by_pair[pair] - weight) < 1e-9, f"weight leak on {pair}"
    # every shipment actually traversed the link: latency + transfer > 0
    assert all(s.latency_s > 0 and s.transfer_s > 0 for s in result.shipments)
    # root rounds never ship
    root_rounds = {
        (r.tenant, r.round_id)
        for r in result.region_report(topology.root).result.records
    }
    assert all((s.tenant, s.round_id) not in root_rounds for s in result.shipments)


# --------------------------------------------- failover: complete-or-abort
@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    start_frac=st.floats(0.15, 0.5),
    width_frac=st.floats(0.15, 0.4),
)
def test_failover_reaches_terminal_state_and_drains_to_fallback(
    seed: int, start_frac: float, width_frac: float
):
    start = start_frac * HORIZON
    end = min(HORIZON, start + width_frac * HORIZON)
    plan = FaultPlan(partitions=(PartitionWindow(("eu",), start, end),))
    topology = _topology(3)
    trace = _trace(seed)
    engine = GeoReplayEngine(
        topology,
        lambda region: _platform(region),
        trace,
        _config(),
        seed=seed,
        fault_plan=plan,
    )
    result = engine.run()
    # never hangs: the run returned and every routed arrival is terminal
    assert len(result.merged.records) == len(trace.events)
    for rec in result.merged.records:
        terminal = rec.rejected or rec.shed or rec.aborted or rec.complete_at >= 0
        assert terminal, f"round ({rec.tenant},{rec.round_id}) left in limbo"
    # routing partitions the trace: each event served in exactly one region
    assert sum(len(rep.result.records) for rep in result.regions) == len(trace.events)
    # drained tenants served in the fallback exactly for the window
    fallback = topology.fallback("eu")
    eu_tenants = {t for t, home in result.route.homes.items() if home == "eu"}
    for (tenant, round_id), region in result.route.served_in.items():
        if tenant not in eu_tenants:
            continue
        at = next(
            ev.at
            for ev in trace.events
            if ev.tenant == tenant and ev.round_id == round_id
        )
        expected = fallback if start <= at < end else "eu"
        assert region == expected, (
            f"tenant {tenant} round {round_id} at {at:.1f}s served in "
            f"{region}, expected {expected}"
        )
    # the drain/heal episode is recorded with the drained tenants
    assert len(result.route.episodes) == 1
    ep = result.route.episodes[0]
    assert ep.region == "eu" and ep.fallback == fallback
    assert set(ep.tenants) == eu_tenants


# ------------------------------------------------------------- route purity
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**20), n_regions=st.sampled_from((1, 2, 3)))
def test_route_trace_partitions_events_exactly_once(seed: int, n_regions: int):
    trace = _trace(seed)
    route = route_trace(trace, _topology(n_regions))
    seen: set[tuple[int, int]] = set()
    for region, events in route.assignments.items():
        assert region in REGIONS[:n_regions]
        for ev in events:
            key = (ev.tenant, ev.round_id)
            assert key not in seen, f"event {key} routed twice"
            seen.add(key)
    assert len(seen) == len(trace.events)
    assert route.failover_rounds == 0  # no fault plan, nobody fails over


# -------------------------------------------------------- fault-plan guards
def test_geo_fault_validation_refuses_unsafe_plans():
    topology = _topology(3)
    no_fallback = RegionTopology(("us", "eu"), fallbacks={})
    for plan, topo, why in (
        (FaultPlan(partitions=(PartitionWindow(("mars",), 1.0, 2.0),)), topology,
         "unknown region"),
        (FaultPlan(partitions=(PartitionWindow(("eu",), 1.0, 2.0),)), no_fallback,
         "no fallback"),
    ):
        try:
            validate_geo_faults(plan, topo)
        except ConfigError:
            continue
        raise AssertionError(f"plan with {why} was accepted")
    # region + its fallback down at once: nowhere to drain
    both_down = FaultPlan(
        partitions=(
            PartitionWindow(("eu",), 10.0, 30.0),
            PartitionWindow(("ap",), 20.0, 40.0),
        )
    )
    try:
        validate_geo_faults(both_down, topology)
        raise AssertionError("overlapping region+fallback partition accepted")
    except ConfigError:
        pass


def test_asymmetric_links_resolve_per_direction():
    topo = RegionTopology(
        ("us", "eu"),
        links=(WanLink("eu", "us", latency_s=0.05, capacity_bps=1e8),),
        fallbacks={"eu": "us", "us": "eu"},
        default_latency_s=0.02,
    )
    assert topo.link("eu", "us").latency_s == 0.05
    assert topo.link("us", "eu").latency_s == 0.02  # unlisted → defaults
    assert not topo.zero_wan()
    assert _topology(2, zero_wan=True).zero_wan()
