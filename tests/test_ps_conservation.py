"""Property tests for the virtual-time processor-sharing link.

A brute-force fluid reference (independent of the simulation kernel)
computes exact completion times for arbitrary flow schedules; the
virtual-time link must agree — no flow may complete early or late — and
``bytes_carried`` must equal the bytes of the completed flows.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.network import Fabric, ProcessorSharingLink
from repro.sim.engine import Environment

CAPACITY = 1000.0


def brute_force_completions(
    capacity: float, schedule: list[tuple[float, float]]
) -> dict[int, float]:
    """Fluid-model reference: advance between arrivals/completions, sharing
    ``capacity`` equally among active flows.  O(F²), direct from the PS
    definition — deliberately naive."""
    arrivals = sorted((t, i, n) for i, (t, n) in enumerate(schedule))
    t = 0.0
    idx = 0
    active: dict[int, float] = {}  # flow -> remaining bytes
    done: dict[int, float] = {}
    while idx < len(arrivals) or active:
        next_arrival = arrivals[idx][0] if idx < len(arrivals) else math.inf
        if active:
            rate = capacity / len(active)
            fin_flow = min(active, key=lambda i: (active[i], i))
            next_finish = t + active[fin_flow] / rate
        else:
            rate = 0.0
            next_finish = math.inf
        if next_arrival <= next_finish:
            if active:
                dt = next_arrival - t
                for i in active:
                    active[i] -= rate * dt
            t = next_arrival
            while idx < len(arrivals) and arrivals[idx][0] == t:
                _, i, n = arrivals[idx]
                active[i] = n
                idx += 1
        else:
            dt = next_finish - t
            for i in list(active):
                active[i] -= rate * dt
            t = next_finish
            for i in sorted(i for i, rem in active.items() if rem <= capacity * 1e-12):
                done[i] = t
                del active[i]
    return done


schedule_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.floats(min_value=1.0, max_value=1e5, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)


@given(schedule_strategy)
@settings(max_examples=80, deadline=None)
def test_ps_link_matches_brute_force_and_conserves_bytes(schedule):
    env = Environment()
    link = ProcessorSharingLink(env, capacity_bps=CAPACITY)
    finished_at: dict[int, float] = {}

    def starter(i: int, delay: float, nbytes: float):
        yield env.timeout(delay)
        yield link.transfer(nbytes)
        finished_at[i] = env.now

    for i, (delay, nbytes) in enumerate(schedule):
        env.process(starter(i, delay, nbytes))
    env.run()

    reference = brute_force_completions(CAPACITY, schedule)
    # Every flow completes, none early or late versus the fluid reference.
    assert set(finished_at) == set(reference)
    for i, expected in reference.items():
        assert finished_at[i] == pytest.approx(expected, rel=1e-9, abs=1e-6), (
            f"flow {i}: sim {finished_at[i]} vs reference {expected}"
        )
    # Byte conservation: the link carried exactly the completed bytes.
    total = sum(nbytes for _, nbytes in schedule)
    assert link.bytes_carried == pytest.approx(total, rel=1e-9, abs=1e-6)
    assert link.active_flows == 0


@given(schedule_strategy)
@settings(max_examples=30, deadline=None)
def test_ps_link_bytes_carried_monotonic_under_partial_run(schedule):
    """Stopping mid-schedule never over-counts carried bytes."""
    env = Environment()
    link = ProcessorSharingLink(env, capacity_bps=CAPACITY)

    def starter(delay: float, nbytes: float):
        yield env.timeout(delay)
        link.transfer(nbytes)

    for delay, nbytes in schedule:
        env.process(starter(delay, nbytes))
    horizon = max(t for t, _ in schedule) / 2 + 0.1
    env.run(until=horizon)
    total = sum(nbytes for _, nbytes in schedule)
    assert link.bytes_carried <= total * (1 + 1e-9) + 1e-6


def brute_force_with_rate_changes(
    capacity: float,
    schedule: list[tuple[float, float]],
    rate_changes: list[tuple[float, float]],
) -> dict[int, float]:
    """Fluid reference extended with piecewise capacity factors (chaos
    rate-rescale/partition hooks).  ``rate_changes`` is a list of
    (time, factor); factor 0 freezes the link until the next change."""
    arrivals = sorted((t, i, n) for i, (t, n) in enumerate(schedule))
    changes = sorted(rate_changes)
    t = 0.0
    idx = 0
    cidx = 0
    factor = 1.0
    active: dict[int, float] = {}
    done: dict[int, float] = {}
    while idx < len(arrivals) or active:
        next_arrival = arrivals[idx][0] if idx < len(arrivals) else math.inf
        next_change = changes[cidx][0] if cidx < len(changes) else math.inf
        if active and factor > 0:
            rate = capacity * factor / len(active)
            fin_flow = min(active, key=lambda i: (active[i], i))
            next_finish = t + active[fin_flow] / rate
        else:
            rate = 0.0
            next_finish = math.inf
        nxt = min(next_arrival, next_change, next_finish)
        assert nxt < math.inf, "reference stalled (factor 0 never lifted)"
        if rate > 0:
            dt = nxt - t
            for i in active:
                active[i] -= rate * dt
        t = nxt
        if next_finish <= next_arrival and next_finish <= next_change:
            for i in sorted(i for i, rem in active.items() if rem <= capacity * 1e-12):
                done[i] = t
                del active[i]
        elif next_arrival <= next_change:
            while idx < len(arrivals) and arrivals[idx][0] == t:
                _, i, n = arrivals[idx]
                active[i] = n
                idx += 1
        else:
            factor = changes[cidx][1]
            cidx += 1
    return done


rate_change_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=60.0, allow_nan=False),
        st.sampled_from([0.0, 0.1, 0.25, 0.5, 2.0]),
    ),
    min_size=0,
    max_size=4,
)


@given(schedule_strategy, rate_change_strategy)
@settings(max_examples=60, deadline=None)
def test_ps_link_conserves_bytes_under_mid_flow_rate_changes(schedule, changes):
    """Chaos hook property: arbitrary mid-flow rescales — including freeze
    windows (factor 0) — never lose or double-count bytes, and completion
    times match the piecewise fluid reference."""
    # distinct change times, link always restored to full rate at the end
    # so every flow eventually completes
    by_time = {round(t, 6): f for t, f in changes}
    restore_at = max([100.0] + [t + 1.0 for t in by_time])
    by_time[restore_at] = 1.0
    change_list = sorted(by_time.items())

    env = Environment()
    link = ProcessorSharingLink(env, capacity_bps=CAPACITY)
    finished_at: dict[int, float] = {}

    def starter(i: int, delay: float, nbytes: float):
        yield env.timeout(delay)
        yield link.transfer(nbytes)
        finished_at[i] = env.now

    def rescaler():
        for at, factor in change_list:
            yield env.timeout(at - env.now)
            link.set_rate_factor(factor)

    for i, (delay, nbytes) in enumerate(schedule):
        env.process(starter(i, delay, nbytes))
    env.process(rescaler())
    env.run()

    reference = brute_force_with_rate_changes(CAPACITY, schedule, change_list)
    assert set(finished_at) == set(reference)
    for i, expected in reference.items():
        assert finished_at[i] == pytest.approx(expected, rel=1e-9, abs=1e-6), (
            f"flow {i}: sim {finished_at[i]} vs reference {expected}"
        )
    total = sum(nbytes for _, nbytes in schedule)
    assert link.bytes_carried == pytest.approx(total, rel=1e-9, abs=1e-6)
    assert link.active_flows == 0
    assert link.rate_factor == 1.0


def test_ps_link_freeze_stalls_and_resumes_exactly():
    """A partition window shifts a flow's completion by exactly its length."""
    env = Environment()
    link = ProcessorSharingLink(env, capacity_bps=100.0)
    done = link.transfer(1000.0)  # 10 s at full rate
    env.run(until=2.0)
    link.set_rate_factor(0.0)  # freeze for 5 s
    env.run(until=7.0)
    assert not done.triggered
    link.set_rate_factor(1.0)
    env.run()
    assert done.processed
    assert env.now == pytest.approx(15.0)
    assert link.bytes_carried == pytest.approx(1000.0)


def test_fabric_partition_heal_restores_degradation_factor():
    env = Environment()
    fabric = Fabric(env, nic_bps=100.0)
    fabric.register_node("a")
    fabric.register_node("b")
    fabric.set_node_rate_factor("a", 0.5)
    fabric.partition(["a"])
    assert fabric.node_rate_factor("a") == 0.0
    assert fabric.tx_link("a").rate_factor == 0.0
    fabric.heal(["a"])
    # healing composes with the persistent degradation, not full rate
    assert fabric.node_rate_factor("a") == 0.5
    assert fabric.tx_link("a").rate_factor == 0.5
    assert fabric.node_rate_factor("b") == 1.0


def test_fabric_heterogeneous_nic_registration():
    env = Environment()
    fabric = Fabric(env, nic_bps=100.0)
    fabric.register_node("fast", nic_bps=1000.0)
    fabric.register_node("slow")
    fast = fabric.transfer("fast", "slow", 1000.0)
    env.run()
    # the 100 B/s RX side of the slow node governs completion
    assert fast.value == pytest.approx(10.0)
    assert fabric.tx_link("fast").capacity_bps == 1000.0
    assert fabric.rx_link("slow").capacity_bps == 100.0


def test_fabric_transfer_completes_with_slower_nic():
    """Satellite: the single completion event fires exactly when the slower
    of the two NICs finishes."""
    env = Environment()
    fabric = Fabric(env, nic_bps=100.0)
    for name in ("a", "b", "c"):
        fabric.register_node(name)
    # Pre-load a's TX link so the a->b transfer's TX leg is the slow one:
    # two flows share a's TX (50 B/s each) while b's RX runs at full rate.
    fabric.transfer("a", "c", 1000.0)
    done = fabric.transfer("a", "b", 1000.0)
    completed = []
    done.callbacks.append(lambda e: completed.append(env.now))
    env.run()
    # RX leg alone: 10 s.  TX leg: both flows share 100 B/s -> each drains
    # 1000 B at 50 B/s -> 20 s.  Completion must track the slower leg.
    assert completed == [pytest.approx(20.0)]
    assert done.value == pytest.approx(20.0)


def test_fabric_transfer_single_event_no_wrappers():
    """The returned event is the completion event itself: it fires in the
    same event step as the slower leg's flow completion (no AllOf/wrapper
    hop), and exactly once."""
    env = Environment()
    fabric = Fabric(env, nic_bps=100.0)
    fabric.register_node("a")
    fabric.register_node("b")
    tx_before = env.heap_pushes
    done = fabric.transfer("a", "b", 500.0)
    # Exactly three scheduled entries per transfer: the two link timers and
    # nothing else until completion fires the result.
    assert env.heap_pushes == tx_before + 2
    env.run()
    assert done.processed
    assert done.value == pytest.approx(5.0)
