"""Round engine: eager/lazy, cold starts, reuse, cross-node, CPU accounts."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.common.units import RESNET152_BYTES, RESNET18_BYTES
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.core.roundsim import RoundEngine
from repro.core.updates import SimUpdate
from repro.controlplane.hierarchy import plan_hierarchy
from repro.workloads.arrival import concurrent_arrivals, staggered_arrivals


def make_updates(times, node="node0", nbytes=RESNET152_BYTES):
    return [
        SimUpdate(uid=i, nbytes=nbytes, weight=1.0, arrival_time=t, node=node, client_id=f"u{i}")
        for i, t in enumerate(times)
    ]


def run_once(cfg, n=8, nodes=("node0",), spread=0.0, nbytes=RESNET152_BYTES, rounds=1):
    engine = RoundEngine(cfg, list(nodes))
    updates = make_updates(staggered_arrivals(n, spread), node=nodes[0], nbytes=nbytes)
    plan = plan_hierarchy({nodes[0]: n}, updates_per_leaf=cfg.updates_per_leaf)
    result = None
    for _ in range(rounds):
        result = engine.run_round(updates, plan, include_eval=False)
    return result


def test_round_produces_positive_act():
    r = run_once(PlatformConfig.lifl())
    assert r.act > 0
    assert r.updates_aggregated == 8
    assert r.nodes_used == 1


def test_eager_beats_lazy_with_spread():
    eager = run_once(PlatformConfig.lifl(eager=True, prewarm=True), n=12, spread=6.0)
    lazy = run_once(PlatformConfig.lifl(eager=False, prewarm=True), n=12, spread=6.0)
    assert eager.act < lazy.act
    # Paper §5.4: roughly a 20% ACT reduction; accept a broad band.
    assert lazy.act / eager.act > 1.05


def test_eager_equals_lazy_work_done():
    eager = run_once(PlatformConfig.lifl(eager=True), n=8)
    lazy = run_once(PlatformConfig.lifl(eager=False), n=8)
    assert eager.updates_aggregated == lazy.updates_aggregated
    # Aggregation CPU is identical; only timing differs.
    assert eager.cpu_by_component["aggregation"] == pytest.approx(
        lazy.cpu_by_component["aggregation"]
    )


def test_cold_start_penalty_visible():
    cold = run_once(PlatformConfig.lifl(reuse=False, prewarm=False))
    warm = run_once(PlatformConfig.lifl(reuse=True), rounds=2)
    assert cold.aggregators_created > 0
    assert warm.aggregators_created == 0  # steady state: all reused
    assert warm.act < cold.act


def test_reuse_pool_persists_across_rounds():
    cfg = PlatformConfig.lifl()
    engine = RoundEngine(cfg, ["node0"])
    updates = make_updates(concurrent_arrivals(8))
    plan = plan_hierarchy({"node0": 8}, updates_per_leaf=2)
    r1 = engine.run_round(updates, plan, include_eval=False)
    r2 = engine.run_round(updates, plan, include_eval=False)
    assert r1.aggregators_created > 0
    assert r2.aggregators_created == 0
    assert r2.aggregators_reused == len(r2.instances)


def test_cross_node_transfers_counted():
    cfg = PlatformConfig.lifl()
    engine = RoundEngine(cfg, ["node0", "node1"])
    updates = make_updates(concurrent_arrivals(4), node="node0") + [
        SimUpdate(uid=10 + i, nbytes=RESNET152_BYTES, weight=1.0, arrival_time=0.0, node="node1")
        for i in range(4)
    ]
    plan = plan_hierarchy({"node0": 4, "node1": 4}, top_node="node0")
    result = engine.run_round(updates, plan, include_eval=False)
    assert result.cross_node_transfers == 1  # node1's intermediate to top
    assert result.nodes_used == 2


def test_locality_agnostic_pays_more_cross_node():
    n = 20
    local = AggregationPlatform(PlatformConfig.sl_h(placement_policy="bestfit", locality_aware=True))
    agnostic = AggregationPlatform(PlatformConfig.sl_h())
    arr = [(0.0, 1.0)] * n
    r_local = local.run_round(arr, RESNET152_BYTES, include_eval=False)
    r_agn = agnostic.run_round(arr, RESNET152_BYTES, include_eval=False)
    assert r_agn.cross_node_transfers > r_local.cross_node_transfers
    assert r_agn.act > r_local.act
    assert r_agn.cpu_total > r_local.cpu_total


def test_eval_extends_completion_time():
    with_eval = run_once(PlatformConfig.lifl())
    engine = RoundEngine(PlatformConfig.lifl(), ["node0"])
    updates = make_updates(staggered_arrivals(8, 0.0))
    plan = plan_hierarchy({"node0": 8}, updates_per_leaf=2)
    w = engine.run_round(updates, plan, include_eval=True)
    assert w.completion_time > w.act


def test_chain_overhead_extends_completion():
    plain = run_once(PlatformConfig.lifl())
    taxed = run_once(PlatformConfig.lifl(chain_overhead_fixed_per_update=1.0))
    assert taxed.completion_time > plain.completion_time
    assert taxed.act == pytest.approx(plain.act)  # ACT itself unchanged


def test_sf_reservation_scales_with_fixed_instances():
    small = run_once(PlatformConfig.serverful(instances=10), nbytes=RESNET18_BYTES)
    big = run_once(PlatformConfig.serverful(instances=60), nbytes=RESNET18_BYTES)
    assert big.cpu_reserved > small.cpu_reserved


def test_mixed_model_sizes_rejected():
    engine = RoundEngine(PlatformConfig.lifl(), ["node0"])
    ups = [
        SimUpdate(0, RESNET18_BYTES, 1.0, 0.0, "node0"),
        SimUpdate(1, RESNET152_BYTES, 1.0, 0.0, "node0"),
    ]
    plan = plan_hierarchy({"node0": 2})
    with pytest.raises(ConfigError):
        engine.run_round(ups, plan)


def test_empty_round_rejected():
    engine = RoundEngine(PlatformConfig.lifl(), ["node0"])
    with pytest.raises(ConfigError):
        engine.run_round([], plan_hierarchy({"node0": 1}))


def test_timeline_contains_agg_events():
    r = run_once(PlatformConfig.lifl())
    kinds = {e.kind for e in r.timeline}
    assert "agg" in kinds
    assert "network" in kinds


def test_weights_flow_into_result():
    engine = RoundEngine(PlatformConfig.lifl(), ["node0"])
    ups = [
        SimUpdate(i, RESNET18_BYTES, weight=float(i + 1), arrival_time=0.0, node="node0")
        for i in range(4)
    ]
    plan = plan_hierarchy({"node0": 4})
    result = engine.run_round(ups, plan, include_eval=False)
    assert result.updates_aggregated == 4
