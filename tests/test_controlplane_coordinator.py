"""Metrics server, node agent, and the coordinator's orchestration cycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError, RoutingError
from repro.controlplane.agent import NodeAgent
from repro.controlplane.coordinator import Coordinator, OrchestrationConfig
from repro.controlplane.hierarchy import plan_hierarchy
from repro.controlplane.metrics import MetricsServer


def make_metrics(n_nodes=5, mc=20):
    ms = MetricsServer()
    for i in range(n_nodes):
        ms.register_node(f"node{i}", mc)
    return ms


def test_metrics_server_report_and_estimates():
    ms = make_metrics(2)
    ms.report("node0", arrival_rate=4.0, exec_time=0.5, updates_seen=8, now=10.0)
    m = ms.node_metrics("node0")
    assert m.queue_estimate == pytest.approx(2.0)
    assert m.residual_capacity == pytest.approx(18.0)
    assert m.updates_seen == 8
    caps = ms.capacities()
    assert len(caps) == 2 and caps[0].residual == pytest.approx(18.0)


def test_metrics_server_validation():
    ms = make_metrics(1)
    with pytest.raises(ConfigError):
        ms.register_node("node0", 20)  # duplicate
    with pytest.raises(ConfigError):
        ms.register_node("bad", 0)
    with pytest.raises(ConfigError):
        ms.report("ghost", 1.0, 1.0)
    with pytest.raises(ConfigError):
        ms.report("node0", -1.0, 1.0)


def test_coordinator_cycle_packs_and_plans():
    coord = Coordinator(make_metrics())
    d = coord.orchestrate(20)
    assert d.nodes_used == 1  # bestfit packs MC=20 onto one node
    assert d.hierarchy.top_node
    assert d.tag is not None
    assert d.cold_starts == len(d.assignments)  # first cycle: all cold


def test_coordinator_reuse_across_cycles():
    coord = Coordinator(make_metrics())
    d1 = coord.orchestrate(20)
    coord.release_round(d1)
    d2 = coord.orchestrate(20)
    assert d2.cold_starts == 0
    assert d2.reused == len(d2.assignments)
    assert d2.aggregators_created == 0


def test_coordinator_without_reuse_always_cold():
    coord = Coordinator(make_metrics(), OrchestrationConfig(reuse_runtimes=False))
    d1 = coord.orchestrate(20)
    coord.release_round(d1)
    d2 = coord.orchestrate(20)
    assert d2.cold_starts == len(d2.assignments)


def test_coordinator_worstfit_spreads():
    coord = Coordinator(make_metrics(), OrchestrationConfig(placement_policy="worstfit"))
    d = coord.orchestrate(20)
    assert d.nodes_used == 5


def test_coordinator_requires_nodes():
    coord = Coordinator(MetricsServer())
    with pytest.raises(ConfigError):
        coord.orchestrate(10)


def test_agent_registers_and_routes(tmp_path):
    ms = MetricsServer()
    ms.register_node("n0", 20)
    ms.register_node("n1", 20)

    class Mailbox:
        def __init__(self):
            self.items = []

        def deliver(self, src, key, dst):
            self.items.append((src, key, dst))

    with NodeAgent("n0", ms) as a0, NodeAgent("n1", ms) as a1:
        agents = {"n0": a0, "n1": a1}
        plan = plan_hierarchy({"n0": 4, "n1": 4}, top_node="n0")
        # register local aggregator sockets
        mailboxes = {}
        for agg_id, spec in plan.aggregators.items():
            mb = Mailbox()
            mailboxes[agg_id] = mb
            agents[spec.node].register_aggregator(agg_id, mb)
        for agent in agents.values():
            agent.apply_routes(plan, agents)
        # leaf on n1 sends through its router; ends up at the top on n0
        n1_aggs = [s for s in plan.aggregators.values() if s.node == "n1"]
        src = n1_aggs[0]
        arr = np.arange(4, dtype=np.float32)
        key = a1.store.put(arr)
        a1.router.send(src.agg_id, key)
        parent = plan.aggregators[src.parent]
        if parent.node == "n0":
            assert len(mailboxes[parent.agg_id].items) == 1


def test_agent_metrics_drain_reports(tmp_path):
    ms = MetricsServer()
    ms.register_node("n0", 20)
    with NodeAgent("n0", ms) as agent:
        agent.metrics_map.on_aggregate("a1", 0.5)
        agent.metrics_map.on_aggregate("a1", 1.5)
        out = agent.drain_metrics(now=1.0, window=2.0)
        assert out["arrival_rate"] == pytest.approx(1.0)
        assert out["exec_time"] == pytest.approx(1.0)
        assert ms.node_metrics("n0").arrival_rate == pytest.approx(1.0)
        # second drain with empty map: rates go to zero
        out2 = agent.drain_metrics(now=2.0, window=2.0)
        assert out2["arrival_rate"] == 0.0


def test_agent_checkpointing(tmp_path):
    with NodeAgent("n0", checkpoint_dir=str(tmp_path)) as agent:
        agent.checkpoint_model(1, {"w": np.ones(3)})
        agent.checkpoints.flush()
        assert agent.checkpoints.versions_on_disk() == [1]


def test_agent_checkpoint_unconfigured():
    with NodeAgent("n0") as agent:
        with pytest.raises(RoutingError):
            agent.checkpoint_model(1, {"w": np.ones(1)})


def test_agent_terminate_unknown_aggregator():
    with NodeAgent("n0") as agent:
        with pytest.raises(RoutingError):
            agent.terminate_aggregator("ghost")
