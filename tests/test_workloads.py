"""Workload generation: populations, traces, arrival processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.fl.model import model_spec
from repro.workloads.arrival import concurrent_arrivals, poisson_arrivals, staggered_arrivals
from repro.workloads.fedscale import MOBILE_PROFILE, SERVER_PROFILE, make_population
from repro.workloads.traces import generate_round_trace


def test_population_size_and_profiles():
    pop = make_population(2800, model_spec("resnet18"), MOBILE_PROFILE, seed=0)
    assert pop.size == 2800
    assert pop.profile.hibernate_max == 60.0
    server = make_population(15, model_spec("resnet152"), SERVER_PROFILE, seed=0)
    assert all(c.config.hibernate_max == 0.0 for c in server.clients)


def test_population_weights_positive_heavy_tailed():
    pop = make_population(500, model_spec("resnet18"), MOBILE_PROFILE, seed=1)
    weights = np.array(list(pop.weights().values()))
    assert weights.min() >= 10
    assert weights.max() > 2 * np.median(weights)


def test_population_deterministic():
    a = make_population(50, model_spec("resnet18"), MOBILE_PROFILE, seed=5)
    b = make_population(50, model_spec("resnet18"), MOBILE_PROFILE, seed=5)
    assert a.sample_counts == b.sample_counts


def test_round_trace_sorted_and_complete():
    pop = make_population(40, model_spec("resnet18"), MOBILE_PROFILE, seed=2)
    trace = generate_round_trace(pop.clients, pop.weights(), make_rng(2, "trace"))
    times = trace.arrival_times()
    assert len(trace) == 40
    assert times == sorted(times)
    assert all(t > 0 for t in times)


def test_round_trace_mobile_spread_exceeds_server_spread():
    spec18, spec152 = model_spec("resnet18"), model_spec("resnet152")
    mobile = make_population(60, spec18, MOBILE_PROFILE, seed=3)
    server = make_population(60, spec152, SERVER_PROFILE, seed=3)
    mt = generate_round_trace(mobile.clients, mobile.weights(), make_rng(3, "m"))
    st = generate_round_trace(server.clients, server.weights(), make_rng(3, "s"))
    m_spread = mt.arrival_times()[-1] - mt.arrival_times()[0]
    s_spread = st.arrival_times()[-1] - st.arrival_times()[0]
    assert m_spread > s_spread  # hibernation dominates the mobile spread


def test_time_to_goal():
    pop = make_population(20, model_spec("resnet18"), MOBILE_PROFILE, seed=4)
    trace = generate_round_trace(pop.clients, pop.weights(), make_rng(4, "t"))
    t10 = trace.time_to_goal(10)
    t20 = trace.time_to_goal(20)
    assert t10 <= t20
    with pytest.raises(ConfigError):
        trace.time_to_goal(21)
    with pytest.raises(ConfigError):
        trace.time_to_goal(0)


def test_rate_per_minute_buckets():
    pop = make_population(30, model_spec("resnet18"), MOBILE_PROFILE, seed=5)
    trace = generate_round_trace(pop.clients, pop.weights(), make_rng(5, "r"))
    horizon = trace.arrival_times()[-1] + 1
    buckets = trace.rate_per_minute(horizon)
    assert sum(buckets) == 30


def test_empty_round_rejected():
    with pytest.raises(ConfigError):
        generate_round_trace([], {}, make_rng(0, "x"))


def test_concurrent_arrivals():
    assert concurrent_arrivals(5) == [0.0] * 5
    jittered = concurrent_arrivals(5, jitter=2.0, rng=make_rng(6, "j"))
    assert len(jittered) == 5
    assert all(0 <= t <= 2.0 for t in jittered)
    assert jittered == sorted(jittered)
    with pytest.raises(ConfigError):
        concurrent_arrivals(0)


def test_staggered_arrivals():
    times = staggered_arrivals(5, 8.0)
    assert times == [0.0, 2.0, 4.0, 6.0, 8.0]
    assert staggered_arrivals(1, 10.0) == [0.0]
    with pytest.raises(ConfigError):
        staggered_arrivals(3, -1.0)


def test_poisson_arrivals_rate():
    times = poisson_arrivals(rate=10.0, horizon=100.0, rng=make_rng(7, "p"))
    assert all(0 < t < 100.0 for t in times)
    assert times == sorted(times)
    assert len(times) == pytest.approx(1000, rel=0.15)
    with pytest.raises(ConfigError):
        poisson_arrivals(0.0, 1.0, make_rng(0, "x"))
