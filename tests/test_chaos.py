"""The fault-injection subsystem: plans, injector, recovery, multi-tenancy."""

from __future__ import annotations

import pytest

from repro.chaos import (
    AggregatorCrash,
    DropoutWave,
    FaultInjector,
    FaultPlan,
    NicDegrade,
    PartitionWindow,
    SlowNode,
    random_fault_plan,
)
from repro.common.errors import ChaosError, RoundAbort
from repro.common.rng import make_rng
from repro.common.units import RESNET152_BYTES
from repro.core.aggregator import AggregatorCosts, AggregatorInstance, InstanceState
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.sim.engine import Environment
from repro.sim.resources import Store
from repro.workloads.arrival import concurrent_arrivals


def _platform(n_nodes: int = 10, **overrides) -> AggregationPlatform:
    cfg = PlatformConfig.lifl(lifecycle_stage="resilient", **overrides)
    return AggregationPlatform(cfg, node_names=[f"node{i:02d}" for i in range(n_nodes)])


def _arrivals(n: int, seed: int = 1) -> list[tuple[float, float]]:
    return [
        (t, 1.0)
        for t in concurrent_arrivals(n, jitter=3.0, rng=make_rng(seed, "chaos-test"))
    ]


# ---- FaultPlan validation --------------------------------------------------

def test_plan_validation_rejects_bad_events():
    with pytest.raises(ChaosError, match="fraction"):
        FaultPlan(dropouts=(DropoutWave(at=1.0, fraction=1.5),)).validate()
    with pytest.raises(ChaosError, match="count"):
        FaultPlan(crashes=(AggregatorCrash(at=1.0, count=0),)).validate()
    with pytest.raises(ChaosError, match="end > start"):
        FaultPlan(
            partitions=(PartitionWindow(nodes=("n0",), start=2.0, end=2.0),)
        ).validate()
    with pytest.raises(ChaosError, match="must end"):
        FaultPlan(
            partitions=(PartitionWindow(nodes=("n0",), start=2.0, end=float("inf")),)
        ).validate()
    with pytest.raises(ChaosError, match="slowdown"):
        FaultPlan(slow_nodes=(SlowNode(node="n0", start=0.0, end=1.0, slowdown=1.0),)).validate()
    with pytest.raises(ChaosError, match="quorum_fraction"):
        FaultPlan(quorum_fraction=0.0).validate()


def test_plan_validation_rejects_overlapping_rate_windows():
    plan = FaultPlan(
        nic_degradations=(NicDegrade(node="n0", start=0.0, end=5.0, factor=0.5),),
        slow_nodes=(SlowNode(node="n0", start=3.0, end=8.0, slowdown=2.0),),
    )
    with pytest.raises(ChaosError, match="overlapping rate windows"):
        plan.validate()
    # disjoint windows on one node, and overlapping windows on different
    # nodes, are both fine
    FaultPlan(
        nic_degradations=(NicDegrade(node="n0", start=0.0, end=3.0, factor=0.5),),
        slow_nodes=(SlowNode(node="n1", start=1.0, end=8.0, slowdown=2.0),),
    ).validate()


def test_random_fault_plans_always_validate():
    names = [f"node{i:02d}" for i in range(6)]
    for seed in range(30):
        plan = random_fault_plan(make_rng(seed, "plans"), names, horizon=30.0, seed=seed)
        plan.validate()  # must not raise
        assert not plan.is_empty


# ---- injector wiring -------------------------------------------------------

def test_crashes_require_resilient_lifecycle():
    cfg = PlatformConfig.lifl()  # default warm-pool stage
    platform = AggregationPlatform(cfg, node_names=["node00", "node01"])
    plan = FaultPlan(crashes=(AggregatorCrash(at=1.0),))
    with pytest.raises(ChaosError, match="resilient"):
        platform.run_round(
            _arrivals(8), RESNET152_BYTES, include_eval=False,
            injector=FaultInjector(plan),
        )


def test_unknown_fault_targets_rejected():
    platform = _platform(2)
    plan = FaultPlan(nic_degradations=(NicDegrade(node="ghost", start=0.0, end=1.0, factor=0.5),))
    with pytest.raises(ChaosError, match="unknown node"):
        platform.run_round(
            _arrivals(8), RESNET152_BYTES, include_eval=False,
            injector=FaultInjector(plan),
        )
    plan2 = FaultPlan(dropouts=(DropoutWave(at=1.0, fraction=0.5, tenant=3),))
    with pytest.raises(ChaosError, match="tenant"):
        platform.run_round(
            _arrivals(8), RESNET152_BYTES, include_eval=False,
            injector=FaultInjector(plan2),
        )


def test_empty_plan_injector_changes_nothing():
    """Recovery processes alone (no faults) must not disturb the round."""
    platform = _platform()
    baseline = platform.run_round(_arrivals(40), RESNET152_BYTES, include_eval=False)
    platform2 = _platform()
    chaos = platform2.run_round(
        _arrivals(40), RESNET152_BYTES, include_eval=False,
        injector=FaultInjector(FaultPlan()),
    )
    assert chaos.act == baseline.act
    assert chaos.updates_aggregated == baseline.updates_aggregated == 40
    assert chaos.clients_dropped == 0 and chaos.aggregator_restarts == 0


# ---- dropout recovery (HeartbeatMonitor wired into the round) --------------

def test_dropout_round_completes_at_quorum_with_heartbeat_detection():
    platform = _platform()
    plan = FaultPlan(
        seed=5, quorum_fraction=0.5, heartbeat_timeout=2.0, sweep_interval=0.5,
        dropouts=(DropoutWave(at=1.5, fraction=0.3),),
    )
    injector = FaultInjector(plan)
    result = platform.run_round(
        _arrivals(60), RESNET152_BYTES, include_eval=False, injector=injector,
    )
    assert result.clients_dropped > 0
    assert result.updates_aggregated == 60 - result.clients_dropped
    assert result.updates_aggregated >= 30  # quorum
    # the § 3 no-double-count invariant: emitted weight covers exactly the
    # aggregated updates (all weights are 1.0 here)
    assert result.total_weight == result.updates_aggregated
    # keep-alive detection found every dropped client, and only those
    assert injector.report.clients_declared_failed == result.clients_dropped
    # goal_reductions counts goals actually shrunk (a declared client whose
    # leaf already finished reduces nothing)
    assert 0 < injector.report.goal_reductions <= result.clients_dropped


def test_dropout_beyond_quorum_aborts_typed():
    platform = _platform()
    plan = FaultPlan(
        seed=5, quorum_fraction=0.9, heartbeat_timeout=1.0, sweep_interval=0.5,
        dropouts=(DropoutWave(at=0.5, fraction=0.9),),
    )
    with pytest.raises(RoundAbort) as exc:
        platform.run_round(
            _arrivals(40), RESNET152_BYTES, include_eval=False,
            injector=FaultInjector(plan),
        )
    assert exc.value.survivors < exc.value.quorum <= exc.value.total == 40


# ---- crash / stateless restart ---------------------------------------------

def test_crash_restart_preserves_aggregate_weight():
    platform = _platform()
    plan = FaultPlan(seed=9, crashes=(AggregatorCrash(at=3.0, count=3),))
    injector = FaultInjector(plan)
    result = platform.run_round(
        _arrivals(50), RESNET152_BYTES, include_eval=False, injector=injector,
    )
    assert injector.report.crashes_injected == 3
    assert result.aggregator_restarts == 3
    # stateless restart re-reads every consumed input: nothing lost,
    # nothing double-counted
    assert result.updates_aggregated == 50
    assert result.total_weight == 50.0


def test_crash_top_aggregator_still_completes():
    platform = _platform(4)
    plan = FaultPlan(seed=2, crashes=(AggregatorCrash(at=4.0, role="top"),))
    result = platform.run_round(
        _arrivals(30), RESNET152_BYTES, include_eval=False,
        injector=FaultInjector(plan),
    )
    assert result.aggregator_restarts == 1
    assert result.total_weight == 30.0


def test_crash_and_dropout_compose():
    platform = _platform()
    plan = FaultPlan(
        seed=4, quorum_fraction=0.5, heartbeat_timeout=2.0, sweep_interval=0.5,
        crashes=(AggregatorCrash(at=3.0, count=2),),
        dropouts=(DropoutWave(at=1.0, fraction=0.25),),
    )
    result = platform.run_round(
        _arrivals(60), RESNET152_BYTES, include_eval=False,
        injector=FaultInjector(plan),
    )
    assert result.total_weight == result.updates_aggregated
    assert result.updates_aggregated == 60 - result.clients_dropped
    assert result.aggregator_restarts == 2


# ---- instance-level chaos hooks --------------------------------------------

def _instance(env: Environment, fan_in: int = 2, startup: float = 0.0):
    outputs: list[float] = []
    inst = AggregatorInstance(
        env=env,
        agg_id="leaf0",
        node="node0",
        role="leaf",
        fan_in=fan_in,
        costs=AggregatorCosts(0.0, 0.0, 0.1, 0.0, startup, 0.0),
        eager=True,
        charge_cpu=lambda comp, s: None,
        on_output=lambda inst, weight, now: outputs.append(weight),
        record=None,
    )
    return inst, outputs


def test_reduce_goal_to_zero_emits_empty_intermediate():
    from repro.core.updates import MailboxItem

    env = Environment()
    inst, outputs = _instance(env, fan_in=2)
    inst.ensure_created(reused=True)
    inst.deliver(MailboxItem(1.0, "c0", False, 0.0))
    env.run(until=1.0)
    assert not outputs  # one of two received; still waiting
    inst.reduce_goal(2)  # both remaining clients declared dead
    env.run(until=2.0)
    assert outputs == [1.0]  # emits with what it has
    assert inst.state is InstanceState.FINISHED
    # reducing a finished instance is a no-op
    inst.reduce_goal(1)
    assert inst.fan_in == 0


def test_restart_replays_consumed_inputs():
    from repro.core.updates import MailboxItem

    env = Environment()
    inst, outputs = _instance(env, fan_in=3)
    inst.retain_inputs = True
    inst.ensure_created(reused=True)
    inst.deliver(MailboxItem(2.0, "c0", False, 0.0))
    inst.deliver(MailboxItem(3.0, "c1", False, 0.0))
    env.run(until=1.0)
    assert inst.stats.updates_aggregated == 2
    inst.restart(0.5, reused=False)
    inst.deliver(MailboxItem(5.0, "c2", False, 0.0))
    env.run()
    # all three weights present exactly once despite the mid-round restart
    assert outputs == [10.0]
    assert inst.stats.restarts == 1
    assert inst.stats.updates_aggregated == 3


def test_restart_reclaims_same_instant_in_flight_delivery():
    """Race regression: a deposit that succeeded the parked getter in the
    same instant as the crash must be reclaimed, not consumed by the dead
    incarnation (which would lose the update and wedge the round)."""
    from repro.core.updates import MailboxItem

    env = Environment()
    inst, outputs = _instance(env, fan_in=2)
    inst.retain_inputs = True
    inst.ensure_created(reused=True)
    env.run(until=1.0)  # consumer parks on the empty mailbox
    inst.deliver(MailboxItem(4.0, "c0", False, env.now))  # in-flight resume
    inst.restart(0.0, reused=True)  # same-instant crash+restart
    inst.deliver(MailboxItem(6.0, "c1", False, env.now))
    env.run()
    assert outputs == [10.0]  # both weights, exactly once
    assert inst.stats.updates_aggregated == 2
    assert inst.stats.restarts == 1


def test_crash_with_pending_agg_timeout_cannot_resume_dead_incarnation():
    """The kill is synchronous: an Agg-step timeout still pending at crash
    time must not step the dead generator later (it would corrupt the
    reset accumulator and double-aggregate the in-progress item)."""
    from repro.core.updates import MailboxItem

    env = Environment()
    inst, outputs = _instance(env, fan_in=2)  # agg_latency 0.1
    inst.retain_inputs = True
    inst.ensure_created(reused=True)
    inst.deliver(MailboxItem(2.0, "c0", False, 0.0))
    inst.deliver(MailboxItem(3.0, "c1", False, 0.0))

    def mid_agg_restart(_event) -> None:
        inst.restart(0.0, reused=True)

    # fires at t=0.05, halfway through the first item's Agg-step timeout —
    # the old incarnation is parked on a timer that outlives the crash
    env.timeout(0.05).callbacks.append(mid_agg_restart)
    env.run()
    assert outputs == [5.0]
    assert inst.stats.updates_aggregated == 2
    assert inst.stats.restarts == 1


def test_abort_restocks_warm_pool():
    """An aborted round's pods are reclaimed like any other round's: the
    warm pool must not leak the slots the round consumed."""
    platform = _platform()
    platform.run_round(_arrivals(40), RESNET152_BYTES, include_eval=False)
    pool_before = platform.engine.warm.total()
    assert pool_before > 0
    plan = FaultPlan(
        seed=5, quorum_fraction=0.95, heartbeat_timeout=1.0, sweep_interval=0.5,
        dropouts=(DropoutWave(at=0.5, fraction=0.9),),
    )
    with pytest.raises(RoundAbort):
        platform.run_round(
            _arrivals(40), RESNET152_BYTES, include_eval=False,
            injector=FaultInjector(plan),
        )
    assert platform.engine.warm.total() >= pool_before


def test_reactive_abort_does_not_stock_phantom_warm_pods():
    """A reactive (create-on-delivery) round that aborts early must only
    reclaim the instances that actually came up — never the full plan."""
    plan = FaultPlan(
        seed=5, quorum_fraction=0.95, heartbeat_timeout=0.5, sweep_interval=0.25,
        dropouts=(DropoutWave(at=0.1, fraction=0.95),),
    )
    pools = {}
    for prewarm in (True, False):
        platform = _platform(prewarm=prewarm)
        with pytest.raises(RoundAbort):
            platform.run_round(
                _arrivals(40), RESNET152_BYTES, include_eval=False,
                injector=FaultInjector(plan),
            )
        pools[prewarm] = platform.engine.warm.total()
    # prewarm created the whole plan, the reactive round only a few
    # instances before aborting; identical restocks would mean phantoms
    assert pools[False] < pools[True]


def test_rejected_plan_does_not_leak_warm_pool():
    """An injector that rejects its plan at install time (after the round
    is built) must not drain the warm pool: the next round still reuses."""
    platform = _platform()
    platform.run_round(_arrivals(40), RESNET152_BYTES, include_eval=False)
    pool_before = platform.engine.warm.total()
    assert pool_before > 0
    bad = FaultPlan(
        nic_degradations=(NicDegrade(node="ghost", start=0.0, end=1.0, factor=0.5),)
    )
    with pytest.raises(ChaosError, match="unknown node"):
        platform.run_round(
            _arrivals(40), RESNET152_BYTES, include_eval=False,
            injector=FaultInjector(bad),
        )
    assert platform.engine.warm.total() >= pool_before
    healthy = platform.run_round(_arrivals(40), RESNET152_BYTES, include_eval=False)
    assert healthy.aggregators_reused > 0  # no spurious cold-start storm


def test_crash_only_plan_installs_no_recovery_controllers():
    """Recovery sweeps only matter when clients can disappear; crash-only
    plans must not pay the per-sweep beat loop."""
    platform = _platform()
    injector = FaultInjector(FaultPlan(seed=1, crashes=(AggregatorCrash(at=3.0),)))
    platform.run_round(
        _arrivals(30), RESNET152_BYTES, include_eval=False, injector=injector,
    )
    assert injector.controllers == []
    assert injector.report.crashes_injected == 1


def test_restart_requires_created_unfinished_instance():
    env = Environment()
    inst, _ = _instance(env)
    with pytest.raises(Exception, match="before creation"):
        inst.restart(0.0, reused=True)
    assert inst.crash() is False  # nothing to kill yet


def test_store_drop_getters_prevents_item_loss():
    env = Environment()
    store = Store(env)

    got: list[object] = []

    def consumer():
        item = yield store.get()
        got.append(item)

    env.process(consumer())
    env.run()  # consumer parks on the empty store
    assert store.drop_getters() == 1
    store.put_nowait("x")  # would have vanished into the dead getter
    assert store.try_get() == "x"
    assert got == []


# ---- multi-tenant rounds ---------------------------------------------------

def test_multi_tenant_rounds_share_fabric_but_not_results():
    platform = _platform()
    results = platform.run_multi_tenant(
        [_arrivals(30, seed=1), _arrivals(30, seed=2)], RESNET152_BYTES
    )
    assert len(results) == 2
    for result in results:
        assert result.updates_aggregated == 30
        assert result.act > 0
    # distinct tenants, distinct plans: the round tags differ
    assert results[0].instances[0].agg_id != results[1].instances[0].agg_id


def test_multi_tenant_contention_never_speeds_up_rounds():
    single = _platform(4, locality_aware=False)
    solo = single.run_round(
        _arrivals(40), RESNET152_BYTES, include_eval=False, record_timeline=False
    )
    multi = _platform(4, locality_aware=False)
    shared = multi.run_multi_tenant(
        [_arrivals(40), _arrivals(40, seed=7)], RESNET152_BYTES
    )
    # locality-agnostic rounds cross nodes, so sharing the fabric with a
    # second tenant cannot make the first tenant faster
    assert shared[0].act >= solo.act - 1e-9


def test_multi_tenant_abort_is_isolated_per_tenant():
    """One tenant losing its quorum must not destroy its neighbours'
    completed rounds: the aborted tenant comes back flagged, the others
    finish normally."""
    platform = _platform()
    plan = FaultPlan(
        seed=3, quorum_fraction=0.95, heartbeat_timeout=1.0, sweep_interval=0.5,
        dropouts=(DropoutWave(at=0.5, fraction=0.9, tenant=1),),
    )
    results = platform.run_multi_tenant(
        [_arrivals(30, seed=1), _arrivals(30, seed=2)],
        RESNET152_BYTES,
        injector=FaultInjector(plan),
    )
    assert not results[0].aborted
    assert results[0].updates_aggregated == 30
    assert results[0].act > 0
    assert results[1].aborted
    assert results[1].act == 0.0
    assert results[1].clients_dropped > 0


def test_multi_tenant_chaos_targets_single_tenant():
    platform = _platform()
    plan = FaultPlan(
        seed=3, quorum_fraction=0.3, heartbeat_timeout=2.0, sweep_interval=0.5,
        dropouts=(DropoutWave(at=1.0, fraction=0.4, tenant=1),),
    )
    results = platform.run_multi_tenant(
        [_arrivals(30, seed=1), _arrivals(30, seed=2)],
        RESNET152_BYTES,
        injector=FaultInjector(plan),
    )
    assert results[0].clients_dropped == 0
    assert results[0].updates_aggregated == 30
    assert results[1].clients_dropped > 0
    assert results[1].updates_aggregated == 30 - results[1].clients_dropped
