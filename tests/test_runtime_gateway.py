"""Gateway RX/TX, inter-node routing, codec, checkpoints."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import LiflError, RoutingError
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.gateway import Gateway, decode_update, encode_update
from repro.runtime.metrics_map import MetricsMap
from repro.runtime.object_store import SharedMemoryObjectStore
from repro.runtime.skmsg import SkMsgRouter
from repro.runtime.sockmap import SockMap


class Mailbox:
    def __init__(self):
        self.items = []

    def deliver(self, src_id, key, dst_id):
        self.items.append((src_id, key, dst_id))


def make_node(name):
    store = SharedMemoryObjectStore(node=name)
    sockmap = SockMap(name)
    metrics = MetricsMap(name)
    router = SkMsgRouter(sockmap, metrics, store)
    gw = Gateway(name, store, router)
    return store, sockmap, router, gw


@pytest.mark.parametrize(
    "arr",
    [
        np.arange(12, dtype=np.float32).reshape(3, 4),
        np.ones((2, 2, 2), dtype=np.float64),
        np.array([1, -2, 3], dtype=np.int64),
        np.zeros(1, dtype=np.float32),
    ],
)
def test_codec_roundtrip(arr):
    out = decode_update(encode_update(arr))
    np.testing.assert_array_equal(out, arr)
    assert out.dtype == arr.dtype


def test_gateway_rx_queues_into_shm_and_notifies():
    store, sockmap, _, gw = make_node("n1")
    try:
        leaf = Mailbox()
        sockmap.update("leaf0", leaf)
        arr = np.arange(6, dtype=np.float32)
        key = gw.receive(encode_update(arr), "leaf0", src_id="client7")
        assert leaf.items == [("client7", key, "leaf0")]
        np.testing.assert_array_equal(store.get(key), arr)
        assert gw.rx_updates == 1
    finally:
        store.destroy()


def test_inter_node_transmit_moves_payload_and_releases_local():
    s1, sm1, r1, gw1 = make_node("n1")
    s2, sm2, r2, gw2 = make_node("n2")
    try:
        remote_mb = Mailbox()
        sm2.update("a3", remote_mb)
        gw1.add_inter_node_route("a3", "n2", gw2)
        arr = np.linspace(0, 1, 50).astype(np.float32)
        key = s1.put(arr)
        gw1.transmit("a1", key, "a3")
        (src, key2, dst), = remote_mb.items
        assert (src, dst) == ("a1", "a3")
        np.testing.assert_array_equal(s2.get(key2), arr)
        assert s1.object_count == 0  # local copy recycled after transmit
        assert gw1.tx_updates == 1 and gw2.rx_updates == 1
    finally:
        s1.destroy()
        s2.destroy()


def test_full_skmsg_to_gateway_redirect():
    """Fig. 12: source's sockmap maps a remote destination to the gateway."""
    s1, sm1, r1, gw1 = make_node("n1")
    s2, sm2, r2, gw2 = make_node("n2")
    try:
        remote_mb = Mailbox()
        sm2.update("a3", remote_mb)
        sm1.update("a3", gw1)  # remote dst -> gw socket on node 1
        gw1.add_inter_node_route("a3", "n2", gw2)
        r1.set_route("a1", "a3")
        key = s1.put(np.ones(5, dtype=np.float32))
        r1.send("a1", key)
        assert len(remote_mb.items) == 1
    finally:
        s1.destroy()
        s2.destroy()


def test_transmit_without_route_raises():
    s1, _, _, gw1 = make_node("n1")
    try:
        key = s1.put(np.zeros(2, dtype=np.float32))
        with pytest.raises(RoutingError):
            gw1.transmit("a1", key, "missing")
    finally:
        s1.destroy()


def test_route_removal():
    s1, _, _, gw1 = make_node("n1")
    s2, _, _, gw2 = make_node("n2")
    try:
        gw1.add_inter_node_route("a3", "n2", gw2)
        gw1.remove_inter_node_route("a3")
        assert gw1.inter_node_route("a3") is None
        with pytest.raises(RoutingError):
            gw1.remove_inter_node_route("a3")
    finally:
        s1.destroy()
        s2.destroy()


def test_checkpoint_roundtrip(tmp_path):
    with CheckpointManager(tmp_path) as cm:
        params = {"w": np.arange(4.0), "b": np.zeros(2)}
        cm.submit(3, params)
        cm.flush()
        loaded = cm.load(3)
        np.testing.assert_array_equal(loaded["w"], params["w"])
        assert cm.versions_on_disk() == [3]


def test_checkpoint_snapshot_isolated_from_mutation(tmp_path):
    with CheckpointManager(tmp_path) as cm:
        w = np.zeros(4)
        cm.submit(1, {"w": w})
        w[:] = 99.0  # mutate after submit
        cm.flush()
        np.testing.assert_array_equal(cm.load(1)["w"], np.zeros(4))


def test_checkpoint_missing_version(tmp_path):
    with CheckpointManager(tmp_path) as cm:
        with pytest.raises(LiflError):
            cm.load(42)


def test_checkpoint_closed_rejects_submit(tmp_path):
    cm = CheckpointManager(tmp_path)
    cm.close()
    with pytest.raises(LiflError):
        cm.submit(1, {"w": np.zeros(1)})
