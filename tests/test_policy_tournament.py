"""The policy-tournament scenario and the report's ranking mode."""

from __future__ import annotations

import os

from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import CampaignRunner
from repro.traces import report as trace_report
from repro.experiments.policy_tournament import CONTENDERS, WORKLOADS

SEED = 23


def _bracket(tmp_path, workload: str):
    out_dir = str(tmp_path / f"bracket-{workload}")
    runner = CampaignRunner(
        jobs=1, seed=SEED, out_dir=out_dir, filters={"workload": workload}
    )
    result = runner.run([get_scenario("policy-tournament")])
    report = result.report_for("policy-tournament")
    return report, out_dir


def test_grid_shape_meets_tournament_floor():
    """≥2 policies per family × ≥2 workloads, as one full cross grid."""
    spec = get_scenario("policy-tournament")
    grid = dict(spec.grid)
    assert grid["workload"] == WORKLOADS
    assert grid["contender"] == CONTENDERS
    assert len(WORKLOADS) >= 2
    per_family: dict[str, set[str]] = {}
    for contender in CONTENDERS:
        family, name = contender.split(":", 1)
        per_family.setdefault(family, set()).add(name)
    assert set(per_family) == {"selection", "placement", "admission", "recovery"}
    for family, names in per_family.items():
        assert len(names) >= 2, f"{family} needs >= 2 contenders"


def test_bracket_ranks_by_attainment_per_cost(tmp_path):
    report, _ = _bracket(tmp_path, "poisson")
    rows = report.rows
    assert len(rows) == len(CONTENDERS)
    scores = {r["contender"]: r["attainment_per_cost"] for r in rows}
    assert all(s > 0 for s in scores.values())
    # The rendered bracket lists contenders best-first.
    text = report.text
    body = text[text.index("poisson:"):]
    ranked = sorted(scores, key=lambda c: (-scores[c], c))
    positions = [body.index(f" {c} ") for c in ranked]
    assert positions == sorted(positions), "bracket table is not ranked"
    assert "bracket winners: poisson:" in text


def test_default_named_contenders_share_one_reference_row(tmp_path):
    """Each family's default-named contender is the all-defaults cell, so
    their metrics must be identical — the attribution baseline."""
    report, _ = _bracket(tmp_path, "diurnal")
    defaults = (
        "selection:availability-aware",
        "placement:locality",
        "admission:bounded-queue",
        "recovery:shrink-or-abort",
    )
    strip = lambda r: {  # noqa: E731
        k: v for k, v in r.items() if k not in ("contender", "family", "cell")
    }
    reference = [strip(r) for r in report.rows if r["contender"] in defaults]
    assert len(reference) == len(defaults)
    assert all(row == reference[0] for row in reference[1:])


def test_report_rank_by_appends_without_perturbing(tmp_path, capsys):
    """``--rank-by attainment_per_cost`` appends a ranking; the flag-less
    report output stays byte-identical (it is a strict prefix)."""
    _, out_dir = _bracket(tmp_path, "poisson")
    assert os.path.exists(os.path.join(out_dir, "policy-tournament.json"))

    assert trace_report.main(["report", out_dir]) == 0
    plain = capsys.readouterr().out
    assert trace_report.main(
        ["report", out_dir, "--rank-by", "attainment_per_cost"]
    ) == 0
    ranked = capsys.readouterr().out
    assert ranked.startswith(plain.rstrip("\n"))
    assert "ranked by attainment_per_cost" in ranked
    assert "cost (cpu·s)" in ranked


def test_report_rank_by_skips_costless_rows(tmp_path, capsys):
    """Pointing the ranking at a campaign that never tracked cost is a
    clean no-match, not a crash."""
    out_dir = str(tmp_path / "costless")
    runner = CampaignRunner(
        jobs=1, seed=SEED, out_dir=out_dir,
        filters={"system": "LIFL", "rate_per_min": "12", "shards": "1"},
    )
    runner.run([get_scenario("trace-poisson-slo")])
    assert trace_report.main(
        ["report", out_dir, "--rank-by", "attainment_per_cost"]
    ) == 0
    out = capsys.readouterr().out
    assert "no rows carry 'attainment_per_cost'" in out
