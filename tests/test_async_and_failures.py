"""Asynchronous aggregation (Fig. 11) and failure handling (§3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.core.async_aggregation import (
    AsyncAggregator,
    AsyncConfig,
    polynomial_staleness_weight,
)
from repro.fl.failures import HeartbeatMonitor, apply_dropouts
from repro.fl.fedavg import ModelUpdate
from repro.fl.model import Model
from repro.fl.selector import Selector, SelectorConfig
from repro.workloads.fedscale import MOBILE_PROFILE, make_population
from repro.workloads.traces import generate_round_trace
from repro.fl.model import model_spec


def mk_update(value, weight=1.0, producer=""):
    return ModelUpdate(Model({"w": np.array([float(value)])}), weight=weight, producer=producer)


def mk_agg(goal=2, concurrency=4, eager=True, **kw):
    return AsyncAggregator(Model({"w": np.zeros(1)}), AsyncConfig(goal, concurrency, eager=eager, **kw))


def test_publishes_every_goal_updates():
    agg = mk_agg(goal=2)
    assert agg.submit(mk_update(1.0), 0) is None
    rec = agg.submit(mk_update(3.0), 0)
    assert rec is not None and rec.version == 1
    np.testing.assert_allclose(rec.model["w"], [2.0])  # fresh updates, equal weight
    assert agg.current_version == 1


def test_eager_and_lazy_publish_identical_versions():
    submissions = [(mk_update(v, weight=w), 0) for v, w in [(1, 1), (5, 3), (2, 2), (8, 1)]]
    eager, lazy = mk_agg(eager=True), mk_agg(eager=False)
    for (u, v) in submissions:
        eager.submit(u, min(v, eager.current_version))
    for (u, v) in submissions:
        lazy.submit(u, min(v, lazy.current_version))
    assert len(eager.history) == len(lazy.history) == 2
    for a, b in zip(eager.history, lazy.history):
        assert a.model.allclose(b.model)


def test_staleness_discount_reduces_influence():
    # Two updates, same weight: one fresh, one stale by 3 versions.
    agg = mk_agg(goal=2)
    # Advance to version 3 first.
    for _ in range(3):
        agg.submit(mk_update(0.0), agg.current_version)
        agg.submit(mk_update(0.0), agg.current_version)
    assert agg.current_version == 3
    rec = None
    agg.submit(mk_update(10.0), 3)  # fresh
    rec = agg.submit(mk_update(-10.0), 0)  # staleness 3
    w_fresh, w_stale = 1.0, polynomial_staleness_weight(3)
    expected = (10.0 * w_fresh - 10.0 * w_stale) / (w_fresh + w_stale)
    np.testing.assert_allclose(rec.model["w"], [expected], rtol=1e-9)
    assert rec.mean_staleness == pytest.approx(1.5)


def test_too_stale_updates_dropped():
    agg = mk_agg(goal=2, max_staleness=0)
    for _ in range(2):
        agg.submit(mk_update(1.0), agg.current_version)
        agg.submit(mk_update(1.0), agg.current_version)
    assert agg.current_version >= 1
    before = agg.current_version
    assert agg.submit(mk_update(5.0), 0) is None  # staleness >= 1 -> dropped
    assert agg.dropped_stale == 1
    assert agg.current_version == before


def test_future_version_rejected():
    agg = mk_agg()
    with pytest.raises(ConfigError):
        agg.submit(mk_update(1.0), trained_on_version=5)


def test_checkout_snapshot_is_isolated():
    agg = mk_agg()
    version, snapshot = agg.checkout()
    snapshot["w"][0] = 999.0
    assert agg.global_model["w"][0] == 0.0
    assert version == 0


def test_staleness_weight_properties():
    assert polynomial_staleness_weight(0) == 1.0
    assert polynomial_staleness_weight(3) < polynomial_staleness_weight(1)
    with pytest.raises(ConfigError):
        polynomial_staleness_weight(-1)


def test_async_config_validation():
    with pytest.raises(ConfigError):
        AsyncConfig(aggregation_goal=0, concurrency=4)
    with pytest.raises(ConfigError):
        AsyncConfig(aggregation_goal=4, concurrency=2)


# ---- failures -------------------------------------------------------------

def test_heartbeat_lifecycle():
    hb = HeartbeatMonitor(timeout=10.0)
    hb.beat("c1", now=0.0)
    hb.beat("c2", now=0.0)
    assert hb.is_alive("c1", now=5.0)
    assert not hb.is_alive("c1", now=11.0)
    assert hb.sweep(now=11.0) == ["c1", "c2"]
    assert hb.sweep(now=12.0) == []  # only fresh failures reported
    hb.beat("c1", now=12.0)  # recovery
    assert hb.is_alive("c1", now=13.0)
    assert hb.failed == {"c2"}


def test_heartbeat_unknown_client_not_alive():
    hb = HeartbeatMonitor()
    assert not hb.is_alive("ghost", now=0.0)
    assert hb.last_seen("ghost") is None
    with pytest.raises(ConfigError):
        HeartbeatMonitor(timeout=0.0)


def test_heartbeat_declared_failed_dominates_is_alive():
    """Edge surfaced by wiring the monitor into chaos rounds: once sweep
    declares a client failed, is_alive must say dead even for a query
    timestamp inside the original beat window — recovery happens only
    through a fresh beat."""
    hb = HeartbeatMonitor(timeout=10.0)
    hb.beat("c1", now=0.0)
    assert hb.sweep(now=11.0) == ["c1"]
    # out-of-order (or replayed) query inside the old window: still dead
    assert not hb.is_alive("c1", now=5.0)
    assert not hb.is_alive("c1", now=11.0)
    # only a fresh keep-alive revives the client
    hb.beat("c1", now=12.0)
    assert hb.is_alive("c1", now=13.0)
    assert hb.failed == set()
    # and a later silence re-declares it (fresh failure reported again)
    assert hb.sweep(now=30.0) == ["c1"]


def test_dropouts_of_already_empty_round():
    """Edge surfaced by mid-round dropout waves: a wave can hit a round
    whose arrivals were all consumed/dropped already.  It must no-op and
    leave the RNG stream untouched."""
    rng = make_rng(3, "empty")
    from repro.workloads.traces import RoundTrace

    empty = RoundTrace(arrivals=[])
    state_before = rng.bit_generator.state
    survived, dropped = apply_dropouts(empty, dropout_rate=0.5, rng=rng)
    assert len(survived) == 0 and dropped == []
    assert rng.bit_generator.state == state_before


def test_dropouts_preserve_goal_with_over_provisioning():
    """§3's resilience claim: with 2x over-provisioning, a 30% dropout
    round still meets the aggregation goal."""
    rng = make_rng(9, "dropout")
    spec = model_spec("resnet18")
    pop = make_population(400, spec, MOBILE_PROFILE, seed=1)
    goal = 50
    selector = Selector(SelectorConfig(aggregation_goal=goal, over_provision=2.0))
    participants = selector.select(pop.clients, rng)
    trace = generate_round_trace(participants, pop.weights(), rng)
    survived, dropped = apply_dropouts(trace, dropout_rate=0.3, rng=rng)
    assert len(dropped) > 0
    assert len(survived) >= goal  # goal still reachable
    assert survived.time_to_goal(goal) > 0


def test_dropouts_zero_rate_identity():
    rng = make_rng(10, "d0")
    spec = model_spec("resnet18")
    pop = make_population(20, spec, MOBILE_PROFILE, seed=2)
    trace = generate_round_trace(pop.clients, pop.weights(), rng)
    survived, dropped = apply_dropouts(trace, 0.0, rng)
    assert len(survived) == len(trace) and not dropped
    with pytest.raises(ConfigError):
        apply_dropouts(trace, 1.0, rng)
