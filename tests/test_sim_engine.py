"""Discrete-event kernel: events, processes, conditions, determinism."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Interrupt


def test_timeout_advances_clock(env):
    done = []

    def proc():
        yield env.timeout(5.0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [5.0]


def test_timeout_rejects_negative_delay(env):
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_processes_interleave_in_time_order(env):
    trace = []

    def p(name, delay):
        yield env.timeout(delay)
        trace.append((name, env.now))

    env.process(p("b", 2.0))
    env.process(p("a", 1.0))
    env.process(p("c", 3.0))
    env.run()
    assert trace == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_ties_break_by_scheduling_order(env):
    trace = []

    def p(name):
        yield env.timeout(1.0)
        trace.append(name)

    for name in "abc":
        env.process(p(name))
    env.run()
    assert trace == ["a", "b", "c"]


def test_process_return_value_via_run_until(env):
    def p():
        yield env.timeout(2.0)
        return "result"

    proc = env.process(p())
    assert env.run(until=proc) == "result"


def test_waiting_on_another_process(env):
    def child():
        yield env.timeout(3.0)
        return 21

    def parent():
        value = yield env.process(child())
        return value * 2

    proc = env.process(parent())
    assert env.run(until=proc) == 42
    assert env.now == 3.0


def test_event_succeed_delivers_value(env):
    ev = env.event()
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    env.process(waiter())
    ev.succeed("payload")
    env.run()
    assert got == ["payload"]


def test_event_cannot_trigger_twice(env):
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter(env):
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter())
    ev.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_interrupt_wakes_blocked_process(env):
    events = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            events.append((env.now, i.cause))

    proc = env.process(sleeper())

    def killer():
        yield env.timeout(5.0)
        proc.interrupt("replan")

    env.process(killer())
    env.run()
    assert events == [(5.0, "replan")]


def test_interrupt_after_completion_is_noop(env):
    def quick():
        yield env.timeout(1.0)

    proc = env.process(quick())
    env.run()
    proc.interrupt("late")  # must not raise
    env.run()


def test_interrupt_while_waiting_on_processed_event(env):
    """Yielding an already-processed event commits an immediate resume; a
    same-instant interrupt cannot revoke it (ties break by insertion order,
    and the resume was scheduled first).  The value is delivered, and the
    late interrupt is a no-op once the process has finished."""
    done = env.timeout(1.0, "early")
    events = []

    def late_waiter():
        yield env.timeout(5.0)
        try:
            yield done  # already processed at t=1 → immediate-resume path
            events.append((env.now, "value"))
        except Interrupt as i:  # pragma: no cover - documents the non-path
            events.append((env.now, i.cause))

    proc = env.process(late_waiter())

    def killer():
        yield env.timeout(5.0)
        proc.interrupt("preempt")

    env.process(killer())
    env.run()
    assert events == [(5.0, "value")]
    assert not proc.is_alive


def test_interrupt_after_processed_event_hits_next_wait(env):
    """If the process keeps running after consuming an already-processed
    event, a same-instant interrupt lands at its next wait point."""
    done = env.timeout(1.0, "early")
    events = []

    def late_waiter():
        yield env.timeout(5.0)
        value = yield done  # immediate resume with the stored value
        events.append((env.now, value))
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            events.append((env.now, i.cause))

    proc = env.process(late_waiter())

    def killer():
        yield env.timeout(5.0)
        proc.interrupt("preempt")

    env.process(killer())
    env.run()
    assert events == [(5.0, "early"), (5.0, "preempt")]


def test_double_interrupt_delivers_both(env):
    """Two interrupts at the same instant: the first wakes the process; a
    process that resumes waiting can be interrupted again."""
    causes = []

    def sleeper():
        for _ in range(2):
            try:
                yield env.timeout(100.0)
            except Interrupt as i:
                causes.append((env.now, i.cause))

    proc = env.process(sleeper())

    def killer():
        yield env.timeout(5.0)
        proc.interrupt("first")
        proc.interrupt("second")

    env.process(killer())
    env.run()
    assert causes == [(5.0, "first"), (5.0, "second")]


def test_double_interrupt_after_finish_is_noop(env):
    """A second interrupt arriving after the process already finished (the
    first one let it run to completion) must be swallowed."""
    causes = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            causes.append(i.cause)  # then return: process finishes

    proc = env.process(sleeper())

    def killer():
        yield env.timeout(5.0)
        proc.interrupt("first")
        proc.interrupt("second")  # process will be finished when this fires

    env.process(killer())
    env.run()
    assert causes == ["first"]
    assert not proc.is_alive


def test_all_of_waits_for_every_event(env):
    t1, t2 = env.timeout(1.0, "a"), env.timeout(4.0, "b")
    done = []

    def waiter():
        results = yield env.all_of([t1, t2])
        done.append((env.now, sorted(results.values())))

    env.process(waiter())
    env.run()
    assert done == [(4.0, ["a", "b"])]


def test_any_of_fires_on_first(env):
    t1, t2 = env.timeout(1.0, "fast"), env.timeout(9.0, "slow")
    done = []

    def waiter():
        yield env.any_of([t1, t2])
        done.append(env.now)

    env.process(waiter())
    env.run()
    assert done == [1.0]


def test_any_of_excludes_pending_values(env):
    """Regression: a Timeout is *triggered* (scheduled) at construction, but
    its value must not appear in an AnyOf result until it is processed."""
    t1, t2 = env.timeout(1.0, "fast"), env.timeout(9.0, "slow")
    collected = []

    def waiter():
        results = yield env.any_of([t1, t2])
        collected.append(results)

    env.process(waiter())
    env.run()
    assert collected == [{t1: "fast"}]
    assert t2 not in collected[0]


def test_any_of_includes_simultaneous_events_processed_first(env):
    """Two events at the same instant: only those already processed when
    the condition fires are in the result (tie broken by insertion order)."""
    t1, t2 = env.timeout(1.0, "a"), env.timeout(1.0, "b")
    collected = []

    def waiter():
        results = yield env.any_of([t1, t2])
        collected.append(results)

    env.process(waiter())
    env.run()
    assert collected == [{t1: "a"}]


def test_run_until_time_stops_clock_exactly(env):
    def p():
        while True:
            yield env.timeout(1.0)

    env.process(p())
    env.run(until=3.5)
    assert env.now == 3.5


def test_run_until_event_deadlock_detected(env):
    ev = env.event()  # never triggered

    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=ev)


def test_run_until_event_propagates_failure(env):
    """run(until=ev) re-raises the exception a failed `until` event carries."""
    ev = env.event()

    def failer():
        yield env.timeout(2.0)
        ev.fail(RuntimeError("round collapsed"))

    env.process(failer())
    with pytest.raises(RuntimeError, match="round collapsed"):
        env.run(until=ev)
    assert env.now == 2.0


def test_run_until_failed_process_propagates(env):
    """A process that raises fails its own Process event; run(until=proc)
    surfaces that exception to the caller."""

    def crasher():
        yield env.timeout(1.0)
        raise ValueError("bad plan")

    proc = env.process(crasher())
    with pytest.raises(ValueError, match="bad plan"):
        env.run(until=proc)


def test_yielding_non_event_is_an_error(env):
    def bad():
        yield 42  # type: ignore[misc]

    env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_run_in_past_rejected(env):
    env.run(until=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_waiting_on_already_processed_event(env):
    ev = env.timeout(1.0, "x")
    got = []

    def late_waiter():
        yield env.timeout(5.0)
        value = yield ev  # processed long ago
        got.append((env.now, value))

    env.process(late_waiter())
    env.run()
    assert got == [(5.0, "x")]
