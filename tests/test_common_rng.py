"""Deterministic RNG streams."""

from __future__ import annotations

import numpy as np

from repro.common.rng import RngRegistry, make_rng


def test_same_seed_same_stream_is_deterministic():
    a = make_rng(42, "clients").standard_normal(8)
    b = make_rng(42, "clients").standard_normal(8)
    np.testing.assert_array_equal(a, b)


def test_different_streams_are_decorrelated():
    a = make_rng(42, "clients").standard_normal(8)
    b = make_rng(42, "training").standard_normal(8)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = make_rng(1, "x").standard_normal(8)
    b = make_rng(2, "x").standard_normal(8)
    assert not np.allclose(a, b)


def test_registry_memoizes_streams():
    reg = RngRegistry(7)
    s1 = reg.stream("alpha")
    s2 = reg.stream("alpha")
    assert s1 is s2


def test_registry_streams_independent_of_creation_order():
    r1 = RngRegistry(7)
    r2 = RngRegistry(7)
    _ = r1.stream("first")
    a = r1.stream("second").standard_normal(4)
    b = r2.stream("second").standard_normal(4)
    np.testing.assert_array_equal(a, b)


def test_fork_changes_seed_deterministically():
    a = RngRegistry(7).fork("trial0")
    b = RngRegistry(7).fork("trial0")
    c = RngRegistry(7).fork("trial1")
    assert a.seed == b.seed
    assert a.seed != c.seed
