"""Property-based tests (hypothesis) on the core invariants.

The invariants the paper's correctness rests on:

* FedAvg: eager (cumulative) == lazy (batch); hierarchical composition ==
  flat aggregation, for any tree shape;
* placement: demand conservation, capacity respect, BestFit ⊆ fewest nodes;
* EWMA: bounded by observation range, order-insensitive at convergence;
* object store: refcount conservation — puts == frees after full release;
* processor-sharing link: work conservation (finish time ≥ bytes/capacity);
* step-based aggregator: output weight == sum of input weights.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.rng import make_rng
from repro.controlplane.autoscaler import EwmaEstimator
from repro.controlplane.hierarchy import plan_hierarchy
from repro.controlplane.placement import BestFitPlacer, NodeCapacity, WorstFitPlacer
from repro.fl.fedavg import FedAvgAccumulator, ModelUpdate, federated_average
from repro.fl.model import Model
from repro.runtime.object_store import SharedMemoryObjectStore
from repro.sim.engine import Environment
from repro.cluster.network import ProcessorSharingLink

# ---- FedAvg ---------------------------------------------------------------

updates_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**31 - 1),  # seed for values
        st.floats(min_value=0.5, max_value=1000.0, allow_nan=False),
    ),
    min_size=1,
    max_size=24,
)


def _mk_updates(spec):
    out = []
    for seed, weight in spec:
        vals = make_rng(seed, "prop").standard_normal(6)
        out.append(ModelUpdate(Model({"w": vals}), weight=weight))
    return out


@given(updates_strategy)
@settings(max_examples=60, deadline=None)
def test_eager_equals_lazy_for_any_batch(spec):
    updates = _mk_updates(spec)
    lazy = federated_average(updates)
    eager = FedAvgAccumulator()
    for u in updates:
        eager.add(u)
    result = eager.result()
    assert result.model.allclose(lazy.model, rtol=1e-9, atol=1e-9)
    assert abs(result.weight - lazy.weight) < 1e-9


@given(updates_strategy, st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_hierarchical_equals_flat_for_any_partition(spec, n_leaves):
    updates = _mk_updates(spec)
    flat = federated_average(updates)
    leaves = [FedAvgAccumulator() for _ in range(min(n_leaves, len(updates)))]
    for i, u in enumerate(updates):
        leaves[i % len(leaves)].add(u)
    top = FedAvgAccumulator()
    for leaf in leaves:
        if not leaf.is_empty:
            top.add(leaf.result())
    assert top.result().model.allclose(flat.model, rtol=1e-9, atol=1e-9)


@given(updates_strategy)
@settings(max_examples=40, deadline=None)
def test_average_within_input_envelope(spec):
    updates = _mk_updates(spec)
    avg = federated_average(updates).model["w"]
    stacked = np.stack([u.model["w"] for u in updates])
    assert np.all(avg <= stacked.max(axis=0) + 1e-9)
    assert np.all(avg >= stacked.min(axis=0) - 1e-9)


# ---- placement ---------------------------------------------------------------

@given(
    st.integers(min_value=0, max_value=300),
    st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=10),
)
@settings(max_examples=80, deadline=None)
def test_placement_conserves_demand_and_respects_capacity(n_updates, capacities):
    nodes = [NodeCapacity(f"n{i}", float(c)) for i, c in enumerate(capacities)]
    for placer in (BestFitPlacer(), WorstFitPlacer()):
        plan = placer.place(n_updates, nodes)
        assert sum(plan.per_node.values()) == n_updates
        assert len(plan.assignments) == n_updates
        total_capacity = sum(int(c) for c in capacities)
        if n_updates <= total_capacity:
            for node, count in plan.per_node.items():
                cap = next(n.max_capacity for n in nodes if n.name == node)
                assert count <= cap


@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=2, max_value=8),
)
@settings(max_examples=80, deadline=None)
def test_bestfit_uses_no_more_nodes_than_worstfit(n_updates, capacity, n_nodes):
    """On homogeneous nodes (the paper's testbed, §6.1 footnote), BestFit's
    packing never uses more nodes than the least-connection spread.  (With
    heterogeneous capacities greedy BestFit is not bin-minimal in general.)"""
    nodes = [NodeCapacity(f"n{i}", float(capacity)) for i in range(n_nodes)]
    best = BestFitPlacer().place(n_updates, nodes)
    worst = WorstFitPlacer().place(n_updates, nodes)
    assert best.node_count <= worst.node_count


@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_bestfit_is_minimal_on_homogeneous_nodes(n_updates, capacity, n_nodes):
    """With unit demands on identical nodes, BestFit uses exactly
    ceil(n / capacity) nodes (clamped to the fleet size) — the minimum."""
    nodes = [NodeCapacity(f"n{i}", float(capacity)) for i in range(n_nodes)]
    plan = BestFitPlacer().place(n_updates, nodes)
    if n_updates <= capacity * n_nodes:
        minimum = -(-n_updates // capacity)  # ceil division
        assert plan.node_count == minimum


# ---- EWMA ---------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=80, deadline=None)
def test_ewma_bounded_by_observations(observations):
    est = EwmaEstimator(0.7)
    for q in observations:
        est.update(q)
    assert min(observations) - 1e-6 <= est.value <= max(observations) + 1e-6


@given(
    st.floats(min_value=0.0, max_value=0.99),
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_ewma_fixpoint_is_constant_input(alpha, value):
    est = EwmaEstimator(alpha)
    for _ in range(5):
        est.update(value)
    assert est.value == np.float64(value) or abs(est.value - value) < 1e-6


# ---- hierarchy ------------------------------------------------------------------

@given(
    st.dictionaries(
        st.sampled_from([f"node{i}" for i in range(6)]),
        st.integers(min_value=0, max_value=64),
        min_size=1,
        max_size=6,
    ),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=80, deadline=None)
def test_hierarchy_plan_always_valid_and_covers_demand(pending, per_leaf):
    plan = plan_hierarchy(pending, updates_per_leaf=per_leaf)
    active = {n: q for n, q in pending.items() if q > 0}
    if not active:
        assert not plan.aggregators
        return
    plan.validate()
    parents = {s.parent for s in plan.aggregators.values() if s.parent}
    frontier = [s for s in plan.aggregators.values() if s.agg_id not in parents]
    assert sum(s.fan_in for s in frontier) == sum(active.values())


# ---- object store -----------------------------------------------------------------

@given(st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=12))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_object_store_refcount_conservation(sizes):
    with SharedMemoryObjectStore(node="prop") as store:
        keys = [store.put(np.zeros(n, dtype=np.float32)) for n in sizes]
        for key in keys:
            assert store.release(key) is True
        assert store.bytes_in_use == 0
        assert store.total_puts == store.total_frees == len(sizes)


# ---- processor-sharing link ----------------------------------------------------------

@given(st.lists(st.floats(min_value=1.0, max_value=1e6, allow_nan=False), min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_link_work_conservation(sizes):
    env = Environment()
    link = ProcessorSharingLink(env, capacity_bps=1000.0)
    for s in sizes:
        link.transfer(s)
    env.run()
    lower_bound = sum(sizes) / 1000.0
    assert env.now >= lower_bound * (1 - 1e-6)
    assert link.active_flows == 0
