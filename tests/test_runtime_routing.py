"""Sockmap, SKMSG router, metrics map — the eBPF analogues (App. A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import RoutingError
from repro.runtime.metrics_map import MetricsMap
from repro.runtime.object_store import SharedMemoryObjectStore
from repro.runtime.skmsg import SkMsgRouter
from repro.runtime.sockmap import SockMap


class Mailbox:
    def __init__(self):
        self.items = []

    def deliver(self, src_id, key, dst_id):
        self.items.append((src_id, key, dst_id))


@pytest.fixture
def node():
    store = SharedMemoryObjectStore(node="n1")
    sockmap = SockMap("n1")
    metrics = MetricsMap("n1")
    router = SkMsgRouter(sockmap, metrics, store)
    yield store, sockmap, metrics, router
    store.destroy()


def test_sockmap_update_lookup_delete():
    sm = SockMap()
    mb = Mailbox()
    sm.update("a1", mb)
    assert sm.lookup("a1") is mb
    assert "a1" in sm and len(sm) == 1
    sm.delete("a1")
    assert "a1" not in sm
    with pytest.raises(RoutingError):
        sm.lookup("a1")
    with pytest.raises(RoutingError):
        sm.delete("a1")


def test_sockmap_replace_entry_counts_updates():
    sm = SockMap()
    sm.update("a1", Mailbox())
    sm.update("a1", Mailbox())
    assert sm.update_count == 2
    assert len(sm) == 1


def test_skmsg_routes_by_source_id(node):
    store, sockmap, metrics, router = node
    parent = Mailbox()
    sockmap.update("mid", parent)
    router.set_route("leaf0", "mid")
    key = store.put(np.zeros(10, dtype=np.float32))
    dst = router.send("leaf0", key)
    assert dst == "mid"
    assert parent.items == [("leaf0", key, "mid")]


def test_skmsg_missing_route_raises(node):
    _, _, _, router = node
    with pytest.raises(RoutingError):
        router.send("ghost", "00" * 16)


def test_skmsg_missing_socket_raises(node):
    _, _, _, router = node
    router.set_route("leaf0", "mid")  # route exists, socket doesn't
    with pytest.raises(RoutingError):
        router.send("leaf0", "00" * 16)


def test_skmsg_collects_metrics_on_send(node):
    store, sockmap, metrics, router = node
    sockmap.update("mid", Mailbox())
    router.set_route("leaf0", "mid")
    key = store.put(np.zeros(100, dtype=np.float32))
    router.send("leaf0", key)
    snap = metrics.snapshot("leaf0")
    assert snap.sends == 1
    assert snap.bytes_sent == 400


def test_route_deletion(node):
    _, sockmap, _, router = node
    sockmap.update("mid", Mailbox())
    router.set_route("leaf0", "mid")
    router.delete_route("leaf0")
    with pytest.raises(RoutingError):
        router.route_of("leaf0")
    with pytest.raises(RoutingError):
        router.delete_route("leaf0")


def test_metrics_map_exec_times():
    mm = MetricsMap()
    mm.on_aggregate("a1", 0.5)
    mm.on_aggregate("a1", 1.5)
    snap = mm.snapshot("a1")
    assert snap.updates_aggregated == 2
    assert snap.exec_time_mean == pytest.approx(1.0)
    assert snap.exec_time_last == pytest.approx(1.5)


def test_metrics_map_drain_empties():
    mm = MetricsMap()
    mm.on_send("a1", 10)
    drained = mm.drain()
    assert set(drained) == {"a1"}
    assert len(mm) == 0
    assert mm.snapshot("a1").sends == 0  # fresh after drain


def test_snapshot_is_a_copy():
    mm = MetricsMap()
    mm.on_send("a1", 10)
    snap = mm.snapshot("a1")
    snap.sends = 999
    assert mm.snapshot("a1").sends == 1
