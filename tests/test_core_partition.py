"""Partitioned fabric cohorts: exactness and conservation.

The protocol's promise (see :mod:`repro.core.partition`): under the
locality-aware + gateway-ingress shape, cutting a round's cohort across
worker processes and replaying the boundary emissions in a root phase
reproduces the unpartitioned round *exactly* — same ACT, same FedAvg
weight, same CPU buckets, same instance bookkeeping — and ``shards=1``
is byte-identical because it literally runs the sequential engine.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.core.partition import CohortPlan, PartitionedRoundEngine, plan_cohorts
from repro.core.platform import AggregationPlatform, PlatformConfig

NB = 5e6


def _nodes(n: int) -> list[str]:
    return [f"node{i}" for i in range(n)]


def _factory(n_nodes: int = 8, **overrides):
    def factory() -> AggregationPlatform:
        return AggregationPlatform(
            PlatformConfig.lifl(**overrides), node_names=_nodes(n_nodes)
        )

    return factory


def _rounds(n_rounds: int, per_round: int, seed: int = 7) -> list[list[tuple[float, float]]]:
    rng = make_rng(seed, "partition-test")
    return [
        [
            (float(rng.uniform(0.0, 25.0)), float(rng.integers(10, 200)))
            for _ in range(per_round)
        ]
        for _ in range(n_rounds)
    ]


def _reference(factory, rounds):
    platform = factory()
    return [
        platform.run_round(arr, NB, include_eval=False, record_timeline=False)
        for arr in rounds
    ]


def _assert_exact(ref, got) -> None:
    assert len(ref) == len(got)
    for a, b in zip(ref, got):
        assert a.act == b.act
        assert a.total_weight == b.total_weight
        assert a.updates_aggregated == b.updates_aggregated
        assert a.nodes_used == b.nodes_used
        assert a.cross_node_transfers == b.cross_node_transfers
        assert a.aggregators_created == b.aggregators_created
        assert a.aggregators_reused == b.aggregators_reused
        assert a.cpu_work == pytest.approx(b.cpu_work, abs=1e-12)
        assert a.cpu_reserved == pytest.approx(b.cpu_reserved, abs=1e-9)
        assert sorted(a.cpu_by_component) == sorted(b.cpu_by_component)


# ---- cohort planning conservation ----------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    n_nodes=st.integers(min_value=2, max_value=24),
    per_round=st.integers(min_value=4, max_value=80),
    n_rounds=st.integers(min_value=1, max_value=3),
    shards=st.integers(min_value=1, max_value=12),
    seed=st.integers(0, 2**20),
)
def test_plan_cohorts_conserves_clients_and_weights(
    n_nodes, per_round, n_rounds, shards, seed
) -> None:
    platform = _factory(n_nodes)()
    prepared = [
        platform.prepare_round(arr, NB)
        for arr in _rounds(n_rounds, per_round, seed=seed)
    ]
    plan = plan_cohorts(prepared, shards)
    assert isinstance(plan, CohortPlan)
    plan.validate(prepared)  # disjoint cover of every active node
    assigned = {n for cohort in plan.assignments for n in cohort}
    for updates, hplan in prepared:
        assert plan.root_node == hplan.top.node
        # every update lands in exactly one cohort (or on the root), and
        # the cohorts partition the full weight
        total = sum(u.weight for u in updates)
        by_part = sum(
            u.weight for u in updates if u.node in assigned or u.node == plan.root_node
        )
        assert by_part == pytest.approx(total)
        for u in updates:
            owners = [c for c in plan.assignments if u.node in c]
            assert len(owners) == (0 if u.node == plan.root_node else 1)
    assert plan.n_shards <= shards


def test_plan_cohorts_caps_at_node_count_and_is_deterministic() -> None:
    platform = _factory(4)()
    prepared = [platform.prepare_round(arr, NB) for arr in _rounds(1, 40)]
    a = plan_cohorts(prepared, 16)
    b = plan_cohorts(prepared, 16)
    assert a == b
    assert a.n_shards <= 4


# ---- exactness ------------------------------------------------------------


def test_shards1_is_sequential_engine() -> None:
    factory = _factory()
    rounds = _rounds(3, 120)
    ref = _reference(factory, rounds)
    run = PartitionedRoundEngine(factory, shards=1).run(rounds, NB)
    assert not run.forked
    _assert_exact(ref, run.results)


def test_partitioned_equals_unpartitioned_inline() -> None:
    factory = _factory()
    rounds = _rounds(3, 160)
    ref = _reference(factory, rounds)
    for shards in (2, 3, 4):
        run = PartitionedRoundEngine(factory, shards=shards).run(
            rounds, NB, inline=True
        )
        _assert_exact(ref, run.results)
        assert run.cohorts  # the cohort breakdown is populated
        assert sum(rep.emissions for rep in run.cohorts) > 0


def test_forked_equals_inline() -> None:
    factory = _factory()
    rounds = _rounds(2, 140)
    inline = PartitionedRoundEngine(factory, shards=4).run(rounds, NB, inline=True)
    forked = PartitionedRoundEngine(factory, shards=4, workers=4).run(rounds, NB)
    assert forked.forked  # fork must actually engage on this platform
    _assert_exact(inline.results, forked.results)
    assert forked.critical_path_seconds > 0.0


def test_warm_pool_turns_over_across_partitioned_rounds() -> None:
    factory = _factory()
    rounds = _rounds(2, 160)
    run = PartitionedRoundEngine(factory, shards=2).run(rounds, NB, inline=True)
    assert run.results[0].aggregators_created > 0
    assert run.results[1].aggregators_reused > 0
    assert run.results[1].aggregators_created == 0


def test_single_node_round_degenerates_to_sequential() -> None:
    factory = _factory(1)
    rounds = _rounds(1, 30)
    ref = _reference(factory, rounds)
    run = PartitionedRoundEngine(factory, shards=4).run(rounds, NB)
    _assert_exact(ref, run.results)
    assert run.cohorts == []


# ---- gating ---------------------------------------------------------------


def test_locality_agnostic_platform_is_refused() -> None:
    def factory():
        return AggregationPlatform(PlatformConfig.sl_h(), node_names=_nodes(4))

    with pytest.raises(ConfigError, match="locality-aware"):
        PartitionedRoundEngine(factory, shards=2).run(_rounds(1, 20), NB)


def test_broker_ingress_platform_is_refused() -> None:
    def factory():
        return AggregationPlatform(PlatformConfig.serverless(), node_names=_nodes(4))

    with pytest.raises(ConfigError, match="locality-aware|gateway"):
        PartitionedRoundEngine(factory, shards=2).run(_rounds(1, 20), NB)


def test_bad_arguments_are_refused() -> None:
    factory = _factory()
    with pytest.raises(ConfigError):
        PartitionedRoundEngine(factory, shards=0)
    with pytest.raises(ConfigError):
        PartitionedRoundEngine(factory, shards=2, workers=0)
    with pytest.raises(ConfigError):
        PartitionedRoundEngine(factory, shards=2).run([], NB)
    with pytest.raises(ConfigError):
        plan_cohorts([], 2)


# ---- coalesced ingress ----------------------------------------------------


def test_coalesced_ingress_matches_default_act() -> None:
    """The coalesced walker admits the same arrivals at the same instants;
    with distinct arrival times the round dynamics are identical."""
    rounds = _rounds(2, 120, seed=11)
    ref = _reference(_factory(), rounds)
    got = _reference(_factory(ingress_stage="gateway-coalesced"), rounds)
    for a, b in zip(ref, got):
        assert a.act == b.act
        assert a.total_weight == b.total_weight
        assert a.cross_node_transfers == b.cross_node_transfers


def test_coalesced_ingress_partitions_exactly() -> None:
    factory = _factory(ingress_stage="gateway-coalesced")
    rounds = _rounds(2, 120, seed=13)
    ref = _reference(factory, rounds)
    run = PartitionedRoundEngine(factory, shards=3).run(rounds, NB, inline=True)
    _assert_exact(ref, run.results)


# ---- stress100k scenario golden -------------------------------------------


def test_stress100k_small_cell_is_partition_invariant() -> None:
    from repro.experiments.stress100k import run_cell

    base = run_cell("5k", 1)
    for shards in (2, 4):
        row = run_cell("5k", shards, inline=True)
        for key, val in base.items():
            if key == "shards":
                continue
            if key == "cpu_s":
                # bucket folds add per-shard partials in shard order, so the
                # sum can differ from sequential order by float rounding
                assert row[key] == pytest.approx(val, rel=1e-12)
            else:
                assert row[key] == val, key


def test_population_weights_flow_into_round_weight() -> None:
    """The measured round's total FedAvg weight equals the sum of the
    selected clients' sample counts — conservation end to end."""
    from repro.experiments.stress100k import build_population, round_arrivals

    pop = build_population("5k")
    arrivals = round_arrivals(pop, "5k", 1)
    factory = _factory(25)
    res = factory().run_round(arrivals, NB, include_eval=False, record_timeline=False)
    assert res.total_weight == pytest.approx(sum(w for _, w in arrivals))
    assert np.all([w >= 10 for _, w in arrivals])  # fedscale count floor
