"""The stream's consumer layers: watch view, HTML report, bench trend,
scenario tags, and the atomic ``--profile`` blocks."""

from __future__ import annotations

import json

from repro.perf.bench import render_trend, trend_series
from repro.telemetry.html import build_report, split_runs
from repro.telemetry.watch import WatchState, render_frame, sparkline

HEADER = {"v": 1, "kind": "stream-header", "schema_version": 1, "campaign_seed": 3}


def _stream() -> list[dict]:
    return [
        HEADER,
        {"kind": "run-start", "scenario": "trace-x", "index": 0,
         "params": {"system": "LIFL"}, "seed": 9},
        {"at": 0.0, "kind": "replay-start", "tenants": 2, "horizon": 100.0,
         "slo_target_s": 8.0, "events": 4, "controller": True},
        {"at": 1.0, "kind": "queue-sample", "tenant": 0, "depth": 2,
         "deferred": 0, "inflight": 1, "limit": 4},
        {"at": 5.0, "kind": "round-settled", "tenant": 0, "round": 0,
         "queue_wait": 0.0, "service": 5.0, "latency": 5.0, "attained": True,
         "deferred": False},
        {"at": 9.0, "kind": "round-settled", "tenant": 1, "round": 0,
         "queue_wait": 2.0, "service": 8.0, "latency": 10.0, "attained": False,
         "deferred": False},
        {"at": 10.0, "kind": "round-aborted", "tenant": 1, "round": 1,
         "queue_wait": 1.0},
        {"at": 11.0, "kind": "round-shed", "tenant": 0, "round": 2,
         "reason": "deadline"},
        {"at": 12.0, "kind": "controller-tick", "burn": 0.5, "pool": 6,
         "spinning": 2, "limits": [4, 4]},
        {"at": 12.5, "kind": "control-action", "action": "scale-up",
         "target": "pool", "delta": 2.0, "reason": "burn-high"},
        {"at": 13.0, "kind": "chaos-fault", "fault": "partition",
         "target": "n1,n2", "value": 2.0},
        {"at": 14.0, "kind": "chaos-fault", "fault": "slow-node",
         "target": "n3", "value": 3.0},
        {"at": 15.0, "kind": "chaos-fault", "fault": "heal",
         "target": "n1,n2", "value": 2.0},
        {"at": 16.0, "kind": "perf-snapshot", "events_processed": 100,
         "heap_pushes": 100, "heap_pops": 100, "dead_timer_skips": 0,
         "timers_cancelled": 0, "immediate_reuses": 0, "peak_queue_depth": 7},
    ]


# ------------------------------------------------------------------ watch
def test_watch_state_accumulates_the_stream():
    state = WatchState()
    for obj in _stream():
        state.feed(obj)
    assert state.schema_version == 1
    assert state.header == {"campaign_seed": 3}
    assert state.run_label == "trace-x[0] system=LIFL"
    assert state.settled == 2 and state.attained == 1
    assert state.aborted == 1 and state.shed == 1
    assert state.tenants[0].depth == 2 and state.tenants[0].limit == 4
    assert state.tenants[1].settled == 1 and state.tenants[1].attained == 0
    # burn counts settled misses and aborts inside the window
    assert state.burn == 2 / 3
    assert state.last_tick["pool"] == 6
    assert [a["action"] for a in state.actions] == ["scale-up"]
    # the heal closed the partition window; the slow node stays degraded
    assert state.open_partitions == {}
    assert state.degraded == {"n3": 3.0}
    assert state.perf["peak_queue_depth"] == 7
    assert state.now == 16.0


def test_watch_burn_window_slides():
    state = WatchState(burn_window_s=10.0)
    state.feed({"at": 0.0, "kind": "round-settled", "tenant": 0,
                "queue_wait": 0.0, "service": 1.0, "latency": 1.0,
                "attained": False, "deferred": False})
    state.feed({"at": 100.0, "kind": "round-settled", "tenant": 0,
                "queue_wait": 0.0, "service": 1.0, "latency": 1.0,
                "attained": True, "deferred": False})
    assert state.burn == 0.0  # the miss at t=0 fell out of the window


def test_render_frame_mentions_everything_it_should():
    state = WatchState()
    for obj in _stream():
        state.feed(obj)
    frame = render_frame(state)
    for needle in (
        "schema v1", "campaign seed 3", "trace-x[0]", "2 settled", "1 aborted",
        "1 shed", "50.0% attained", "t0", "t1", "pool 6", "scale-up",
        "burn-high", "slow-node", "n3×3", "100 events", "peak queue 7",
    ):
        assert needle in frame, f"{needle!r} missing from frame"
    assert "partition" in frame  # recent fault list still shows it


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([0.0, 0.0]) == "▁▁"
    line = sparkline([1.0, 2.0, 4.0])
    assert len(line) == 3 and line[-1] == "█"
    assert len(sparkline(list(range(100)), width=24)) == 24


def test_watch_frame_is_truncation_consistent():
    """A frame rendered mid-stream equals the frame of the truncated
    stream — the property that makes --follow honest."""
    objs = _stream()
    rolling = WatchState()
    for obj in objs[:8]:
        rolling.feed(obj)
    fresh = WatchState()
    for obj in objs[:8]:
        fresh.feed(obj)
    assert render_frame(rolling) == render_frame(fresh)


# ------------------------------------------------------------------- html
def _campaign_doc() -> dict:
    return {
        "scenario": "trace-x",
        "title": "a trace campaign",
        "runs": [
            {
                "index": 0,
                "params": {"system": "LIFL"},
                "rows": [{
                    "rounds": 10, "latency_p50_s": 2.0, "latency_p95_s": 4.0,
                    "latency_p99_s": 5.0, "queue_wait_p95_s": 0.5,
                    "slo_attainment": 0.9, "slo_target_s": 8.0,
                    "shed": 1, "deferred": 2, "aborted": 1, "rejected": 0,
                }],
            }
        ],
    }


def _bench_doc() -> dict:
    return {
        "benchmark": "engine",
        "runs": [
            {"label": "pr1", "metrics": {"macro_stress50": {"LIFL": {"seconds": 0.10}}}},
            {"label": "pr2", "metrics": {"macro_stress50": {"LIFL": {"seconds": 0.08}}}},
        ],
    }


def test_split_runs_brackets_records():
    header, runs = split_runs(_stream())
    assert header["campaign_seed"] == 3
    assert len(runs) == 1
    assert runs[0]["label"] == "trace-x[0] system=LIFL"
    assert len(runs[0]["records"]) == len(_stream()) - 2  # header + run-start


def test_build_report_all_sections():
    page = build_report([_campaign_doc()], telemetry=_stream(), bench=_bench_doc())
    for needle in (
        "<!DOCTYPE html>", "trace-x", "round outcomes", "telemetry streams",
        "tenant 0", "tenant 1", "chaos: partition", "action: scale-up",
        "engine benchmark trajectory", "stress50/LIFL",
        "prefers-color-scheme: dark", "var(--s1)", 'stroke-width="2"',
    ):
        assert needle in page, f"{needle!r} missing from report"
    # escaping: no raw angle brackets from data paths
    assert "<script" not in page


def test_build_report_escapes_labels():
    doc = _campaign_doc()
    doc["title"] = "<script>alert(1)</script>"
    page = build_report([doc])
    assert "<script>alert(1)" not in page
    assert "&lt;script&gt;" in page


def test_build_report_empty_inputs():
    page = build_report([])
    assert "nothing to report" in page


# ------------------------------------------------------------------ trend
def test_trend_series_tracks_labels_and_gaps():
    series = trend_series(_bench_doc())
    assert len(series) == 1
    entry = series[0]
    assert entry["metric"] == "stress50/LIFL" and entry["unit"] == "ms"
    assert entry["points"] == [("pr1", 100.0), ("pr2", 80.0)]


def test_render_trend_reports_delta():
    text = render_trend(_bench_doc())
    assert "[0] pr1" in text and "[1] pr2" in text
    assert "100 -> 80" in text
    assert "(last vs prev: -20.0%)" in text


def test_render_trend_empty_doc():
    assert render_trend({"runs": []}) == "no labelled runs in trajectory"


def test_trend_cli_reads_committed_trajectory(capsys):
    from repro.perf.bench import main

    assert main(["bench", "--trend", "--out", "BENCH_engine.json"]) == 0
    out = capsys.readouterr().out
    assert "trajectory across" in out
    assert "stress50/LIFL" in out


# ------------------------------------------------------------------- tags
def test_every_scenario_carries_tags():
    from repro.scenarios.registry import all_scenarios

    specs = all_scenarios()
    assert specs
    for spec in specs:
        assert spec.tags, f"{spec.name} has no subsystem tags"
    by_tag = {t for s in specs for t in s.tags}
    assert {"paper", "traces", "chaos", "perf", "controlplane"} <= by_tag
    paper = [s.name for s in specs if "paper" in s.tags]
    assert {"fig04", "fig08", "capacity", "overhead"} <= set(paper)


def test_cli_list_groups_by_tag(capsys):
    from repro.experiments.__main__ import main

    assert main(["experiments", "--list"]) == 0
    out = capsys.readouterr().out
    assert "[paper]" in out and "[chaos]" in out and "[traces]" in out
    assert "tags: traces,slo,chaos" in out  # trace-burst-chaos row


def test_cli_tag_filter_selects_and_reports_unknown(capsys):
    from repro.experiments.__main__ import main

    # unknown tag: error, list the available ones
    assert main(["experiments", "--filter", "tag=nope"]) == 2
    out = capsys.readouterr().out
    assert "tag='nope'" in out and "'chaos'" in out


def test_cli_tag_filter_runs_the_tagged_scenario(capsys, tmp_path):
    from repro.experiments.__main__ import main

    code = main([
        "experiments", "trace-poisson", "--filter", "tag=traces",
        "--filter", "system=LIFL", "--filter", "rate_per_min=12", "--filter", "shards=1",
        "--out", str(tmp_path / "out"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "trace-poisson-slo" in out


# ---------------------------------------------------------------- profile
def test_profile_block_is_one_atomic_string():
    from repro.experiments.__main__ import _profile_block
    from repro.scenarios.runner import RunRecord

    rec = RunRecord(
        scenario="s", index=0, params={"k": 1}, seed=7,
        rows=[{"slo_attainment": 0.95, "rounds": 20, "latency_p50_s": 1.0,
               "latency_p95_s": 2.0, "latency_p99_s": 3.0,
               "queue_wait_p95_s": 0.1}],
        perf={"events_processed": 10, "heap_pushes": 10, "dead_timer_skips": 0,
              "peak_queue_depth": 3,
              "per_shard": {"shard0": {"events_processed": 5, "peak_queue_depth": 2},
                            "shard10": {"events_processed": 5, "peak_queue_depth": 1}}},
    )
    block = _profile_block("s", rec)
    lines = block.splitlines()
    assert block.endswith("\n") and len(lines) == 4
    assert "s[0] k=1: 10 events" in lines[0]
    # natural shard order inside the block
    assert "shard0:" in lines[1] and "shard10:" in lines[2]
    assert "attained=95.0%" in lines[3]


def test_campaign_telemetry_jsonl_end_to_end(tmp_path, capsys):
    """The CLI satellite loop: record with --telemetry, validate, render
    HTML headless — the same steps the CI smoke runs."""
    from repro.experiments.__main__ import main as experiments_main
    from repro.telemetry.sink import validate_stream
    from repro.traces.report import main as report_main

    stream = tmp_path / "t.jsonl"
    out_dir = tmp_path / "rows"
    code = experiments_main([
        "experiments", "trace-poisson", "--filter", "system=LIFL",
        "--filter", "rate_per_min=12", "--filter", "shards=1",
        "--telemetry", str(stream),
        "--out", str(out_dir),
    ])
    assert code == 0
    counts = validate_stream(str(stream))
    assert counts["round-settled"] > 0 and counts["run-start"] >= 1

    html_path = tmp_path / "report.html"
    code = report_main([
        "report", str(out_dir), "--html", str(html_path),
        "--telemetry", str(stream), "--bench", "BENCH_engine.json",
    ])
    assert code == 0
    page = html_path.read_text()
    assert "telemetry streams" in page and "engine benchmark trajectory" in page
    capsys.readouterr()


def test_report_html_handles_multi_run_fold(tmp_path):
    """More runs than MAX_RUNS: the report notes the fold instead of
    silently truncating."""
    from repro.telemetry.html import MAX_RUNS

    objs = [HEADER]
    for i in range(MAX_RUNS + 3):
        objs.append({"kind": "run-start", "scenario": "s", "index": i, "params": {}})
        objs.append({"at": 1.0, "kind": "round-settled", "tenant": 0,
                     "queue_wait": 0.0, "service": 1.0, "latency": 1.0,
                     "attained": True, "deferred": False})
    page = build_report([], telemetry=objs)
    assert "3 further run(s) recorded" in page


def test_report_json_is_valid_against_stream(tmp_path):
    """Telemetry JSONL written by the campaign parses line by line."""
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.runner import CampaignRunner

    path = tmp_path / "t.jsonl"
    runner = CampaignRunner(
        seed=2, filters={"system": "LIFL", "rate_per_min": "12", "shards": "1"},
        telemetry_path=str(path),
    )
    runner.run([get_scenario("trace-poisson-slo")])
    for line in path.read_text().splitlines():
        json.loads(line)
