"""Platform presets and the FL workload driver."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.common.units import RESNET18_BYTES
from repro.core.platform import AggregationPlatform, IngressKind, PlatformConfig
from repro.core.rounds import FLWorkloadConfig, run_fl_workload
from repro.dataplane.pipelines import PipelineKind
from repro.fl.convergence import curve_for
from repro.fl.model import model_spec
from repro.workloads.fedscale import MOBILE_PROFILE, make_population


def test_presets_encode_paper_table():
    lifl = PlatformConfig.lifl()
    assert lifl.pipeline is PipelineKind.LIFL and lifl.ingress is IngressKind.GATEWAY
    assert lifl.eager and lifl.reuse and lifl.locality_aware
    sf = PlatformConfig.serverful()
    assert sf.fixed_instances > 0 and sf.cold_start_latency == 0.0
    sl = PlatformConfig.serverless()
    assert not sl.eager and not sl.reuse and not sl.locality_aware
    assert sl.sidecar_reserved_cores > 0
    slh = PlatformConfig.sl_h()
    assert slh.pipeline is PipelineKind.LIFL  # same data plane as LIFL
    assert slh.placement_policy == "worstfit"


def test_preset_overrides():
    cfg = PlatformConfig.lifl(eager=False, updates_per_leaf=4)
    assert not cfg.eager and cfg.updates_per_leaf == 4


def test_config_validation():
    with pytest.raises(ConfigError):
        PlatformConfig.lifl(updates_per_leaf=0)
    with pytest.raises(ConfigError):
        PlatformConfig.lifl(cold_start_latency=-1.0)


def test_place_updates_respects_policy():
    plat = AggregationPlatform(PlatformConfig.lifl())
    arr = [(0.0, 1.0)] * 20
    updates = plat.place_updates(arr, RESNET18_BYTES)
    assert len({u.node for u in updates}) == 1  # bestfit packs
    spread = AggregationPlatform(PlatformConfig.sl_h())
    updates2 = spread.place_updates(arr, RESNET18_BYTES)
    assert len({u.node for u in updates2}) == 5


def test_static_plan_for_serverful():
    plat = AggregationPlatform(PlatformConfig.serverful(leaf_nodes=4))
    arr = [(0.0, 1.0)] * 20
    updates = plat.place_updates(arr, RESNET18_BYTES)
    plan = plat.plan_round(updates)
    # one leaf per active static node + top on the last node
    assert plan.top_node == plat.node_names[-1]
    plan.validate()


def test_run_round_end_to_end_all_presets():
    arr = [(float(i) * 0.5, 1.0) for i in range(10)]
    for cfg in (
        PlatformConfig.lifl(),
        PlatformConfig.serverful(instances=10),
        PlatformConfig.serverless(),
        PlatformConfig.sl_h(),
    ):
        result = AggregationPlatform(cfg).run_round(arr, RESNET18_BYTES)
        assert result.act > 0, cfg.name
        assert result.cpu_total > 0, cfg.name


def test_fl_workload_runs_and_accumulates():
    spec = model_spec("resnet18")
    pop = make_population(300, spec, MOBILE_PROFILE, seed=0)
    wl = FLWorkloadConfig(
        spec=spec,
        curve=curve_for("resnet18"),
        aggregation_goal=20,
        active_clients=40,
        rounds=5,
        stop_at_target=False,
    )
    res = run_fl_workload(
        AggregationPlatform(PlatformConfig.lifl()), pop, wl, make_rng(0, "wl")
    )
    assert res.rounds == 5
    assert res.wall_clock_hours() > 0
    assert res.cpu_hours() > 0
    accs = [s.accuracy for s in res.samples]
    assert accs == sorted(accs)  # learning curve is monotone (low noise)


def test_fl_workload_stops_at_target():
    spec = model_spec("mlp-small")
    pop = make_population(100, spec, MOBILE_PROFILE, seed=0)
    wl = FLWorkloadConfig(
        spec=spec,
        curve=curve_for("mlp-small"),
        aggregation_goal=10,
        active_clients=20,
        rounds=100,
        target_accuracy=0.70,
        stop_at_target=True,
    )
    res = run_fl_workload(
        AggregationPlatform(PlatformConfig.lifl()), pop, wl, make_rng(1, "wl")
    )
    assert res.rounds < 100
    assert res.samples[-1].accuracy >= 0.70
    assert res.time_to_accuracy(0.70) is not None
    assert res.cost_to_accuracy(0.70) is not None
    assert res.time_to_accuracy(0.99) is None


def test_workload_config_validation():
    spec = model_spec("resnet18")
    with pytest.raises(ConfigError):
        FLWorkloadConfig(spec=spec, curve=curve_for("resnet18"), aggregation_goal=0, active_clients=5, rounds=1)
    with pytest.raises(ConfigError):
        FLWorkloadConfig(spec=spec, curve=curve_for("resnet18"), aggregation_goal=10, active_clients=5, rounds=1)


def test_series_helpers():
    spec = model_spec("resnet18")
    pop = make_population(100, spec, MOBILE_PROFILE, seed=0)
    wl = FLWorkloadConfig(
        spec=spec, curve=curve_for("resnet18"), aggregation_goal=10,
        active_clients=20, rounds=3, stop_at_target=False,
    )
    res = run_fl_workload(AggregationPlatform(PlatformConfig.lifl()), pop, wl, make_rng(2, "wl"))
    acc_series = res.accuracy_series()
    cpu_series = res.cpu_series()
    assert len(acc_series) == len(cpu_series) == 3
    assert cpu_series[-1][0] > cpu_series[0][0]  # cumulative CPU grows
