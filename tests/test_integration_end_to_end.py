"""Integration tests: the pieces working together.

1. Real FL training (NumPy MLP, non-IID shards) aggregated **through the
   real shared-memory runtime** — gateways, SKMSG routing, hierarchical
   leaf→middle→top FedAvg — reaching the same global model as a centralized
   reference, and actually learning.
2. The simulation platforms producing the paper's qualitative orderings.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import RoutingError
from repro.common.rng import make_rng
from repro.common.units import RESNET152_BYTES
from repro.controlplane.agent import NodeAgent
from repro.controlplane.hierarchy import plan_hierarchy
from repro.controlplane.metrics import MetricsServer
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.fl.datasets import make_federated_dataset
from repro.fl.fedavg import FedAvgAccumulator, ModelUpdate, federated_average
from repro.fl.model import Model
from repro.fl.training import MLP, LocalTrainer, TrainingConfig
from repro.runtime.gateway import encode_update


class RuntimeAggregator:
    """A minimal real aggregator on top of the runtime: collects object
    keys from its mailbox, FedAvg-accumulates, and sends its result."""

    def __init__(self, agg_id, agent, fan_in, weights_by_source):
        self.agg_id = agg_id
        self.agent = agent
        self.fan_in = fan_in
        self.weights = weights_by_source
        self.acc = FedAvgAccumulator()
        self.received = 0
        self.output_key = None

    def deliver(self, src_id, key, dst_id):
        arr = self.agent.store.get(key)
        update = ModelUpdate(
            Model({"flat": np.array(arr, copy=True)}), weight=self.weights[src_id]
        )
        self.agent.store.release(key)
        self.acc.add(update)
        self.received += 1
        self.agent.metrics_map.on_aggregate(self.agg_id, 0.0)
        if self.received == self.fan_in:
            result = self.acc.result(producer=self.agg_id)
            out_key = self.agent.store.put(result.model["flat"])
            # Publish this intermediate's weight before the send cascades
            # into the parent's deliver().
            self.weights[self.agg_id] = result.weight
            try:
                self.agent.router.send(self.agg_id, out_key)
            except RoutingError:
                # top aggregator: no route — keep the result
                self.output_key = out_key


def test_hierarchical_runtime_aggregation_matches_flat_fedavg():
    """Two nodes, leaf→middle→top over real shm + sockmap routing."""
    ms = MetricsServer()
    ms.register_node("n0", 20)
    ms.register_node("n1", 20)
    with NodeAgent("n0", ms) as a0, NodeAgent("n1", ms) as a1:
        agents = {"n0": a0, "n1": a1}
        plan = plan_hierarchy({"n0": 4, "n1": 2}, updates_per_leaf=2, top_node="n0")
        rng = make_rng(0, "updates")
        weights = {}  # source id (client or aggregator) -> FedAvg weight
        aggs = {}
        # Build aggregators and register sockets.
        for agg_id, spec in plan.aggregators.items():
            agg = RuntimeAggregator(agg_id, agents[spec.node], spec.fan_in, weights)
            aggs[agg_id] = agg
            agents[spec.node].register_aggregator(agg_id, agg)
        for agent in agents.values():
            agent.apply_routes(plan, agents)
        # Weights for intermediate sources are filled as results flow; for
        # clients we generate updates here.
        parents = {s.parent for s in plan.aggregators.values() if s.parent}
        frontier = [s for s in plan.aggregators.values() if s.agg_id not in parents]
        all_updates = []
        uid = 0
        for spec in frontier:
            agent = agents[spec.node]
            for _ in range(spec.fan_in):
                vec = rng.standard_normal(16)
                w = float(rng.integers(1, 10))
                cid = f"client{uid}"
                uid += 1
                weights[cid] = w
                all_updates.append(ModelUpdate(Model({"flat": vec}), weight=w))
                agent.gateway.receive(encode_update(vec), spec.agg_id, src_id=cid)
        # The sends cascade synchronously; the top should hold the result.
        top = aggs[plan.top.agg_id]
        assert top.output_key is not None
        result = agents[plan.top.node].store.get(top.output_key)
        expected = federated_average(all_updates).model["flat"]
        np.testing.assert_allclose(result, expected, rtol=1e-6)


def test_weights_known_before_cascade():
    """Regression guard for the ordering in the previous test: leaf results
    cascade synchronously inside gateway.receive, so parent lookups of
    intermediate weights must happen via the accumulator, not a pre-built
    table.  (Covered implicitly above; this asserts the helper behaviour.)"""
    acc = FedAvgAccumulator()
    acc.add(ModelUpdate(Model({"w": np.ones(2)}), weight=3.0))
    out = acc.result()
    assert out.weight == 3.0


def test_real_fl_training_learns_through_simulated_platform():
    """End-to-end: real local SGD + FedAvg, platform used for system
    metrics; accuracy on held-out data improves substantially."""
    ds = make_federated_dataset(n_clients=20, num_classes=5, dim=16, mean_samples=80, seed=3)
    mlp = MLP(dim=16, hidden=32, num_classes=5)
    rng = make_rng(3, "train")
    global_model = mlp.init_params(rng)
    trainer = LocalTrainer(mlp, TrainingConfig(epochs=2, learning_rate=0.1))
    platform = AggregationPlatform(PlatformConfig.lifl())
    clients = list(ds.shards.values())[:10]
    acc0 = mlp.accuracy(global_model, ds.test_features, ds.test_labels)
    total_system_cpu = 0.0
    for _ in range(10):
        acc = FedAvgAccumulator()
        arrivals = []
        for shard in clients:
            params, _ = trainer.train(global_model, shard, rng)
            acc.add(ModelUpdate(params, weight=float(shard.num_samples)))
            arrivals.append((float(rng.uniform(0, 5)), float(shard.num_samples)))
        round_result = platform.run_round(arrivals, nbytes=0.3e6, include_eval=False)
        total_system_cpu += round_result.cpu_total
        global_model = acc.result().model
    accN = mlp.accuracy(global_model, ds.test_features, ds.test_labels)
    assert accN > acc0 + 0.3
    assert accN > 0.75
    assert total_system_cpu > 0


def test_paper_orderings_hold():
    """The headline qualitative results, in one place."""
    arr = [(float(i % 7), 1.0) for i in range(20)]
    results = {}
    for cfg in (PlatformConfig.lifl(), PlatformConfig.serverful(instances=20), PlatformConfig.serverless()):
        plat = AggregationPlatform(cfg)
        plat.run_round(arr, RESNET152_BYTES)
        results[cfg.name] = plat.run_round(arr, RESNET152_BYTES)
    # completion: LIFL < SF < SL
    assert results["lifl"].completion_time < results["sf"].completion_time
    assert results["sf"].completion_time < results["sl"].completion_time
    # CPU: LIFL < SF < SL (paper Figs. 9(b)/(d))
    assert results["lifl"].cpu_total < results["sf"].cpu_total
    assert results["sf"].cpu_total < results["sl"].cpu_total
