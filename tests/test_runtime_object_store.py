"""Shared-memory object store: immutability, keys, refcounts, recycling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ObjectStoreError
from repro.runtime.object_store import KEY_BYTES, SharedMemoryObjectStore, generate_key


@pytest.fixture
def store():
    s = SharedMemoryObjectStore(node="test")
    yield s
    s.destroy()


def test_key_is_16_random_bytes_hex():
    key = generate_key()
    assert len(key) == 2 * KEY_BYTES
    int(key, 16)  # valid hex
    assert generate_key() != key


def test_put_get_roundtrip(store, rng):
    arr = rng.standard_normal((17, 5)).astype(np.float32)
    key = store.put(arr)
    out = store.get(key)
    np.testing.assert_array_equal(out, arr)
    assert out.dtype == arr.dtype and out.shape == arr.shape


def test_objects_are_immutable(store):
    key = store.put(np.ones(4, dtype=np.float32))
    view = store.get(key)
    with pytest.raises(ValueError):
        view[0] = 99.0


def test_get_is_zero_copy_view(store):
    key = store.put(np.arange(8, dtype=np.int64))
    a = store.get(key)
    b = store.get(key)
    # Same shared buffer behind both views.
    assert a.__array_interface__["data"][0] == b.__array_interface__["data"][0]


def test_refcount_release_frees_at_zero(store):
    key = store.put(np.zeros(100, dtype=np.float32), consumers=2)
    assert store.release(key) is False
    assert store.contains(key)
    assert store.release(key) is True
    assert not store.contains(key)
    assert store.bytes_in_use == 0


def test_release_unknown_key_raises(store):
    with pytest.raises(ObjectStoreError):
        store.release("deadbeef" * 4)


def test_get_unknown_key_raises(store):
    with pytest.raises(ObjectStoreError):
        store.get("deadbeef" * 4)


def test_add_consumers_extends_lifetime(store):
    key = store.put(np.zeros(10, dtype=np.float32), consumers=1)
    store.add_consumers(key, 1)
    assert store.release(key) is False
    assert store.release(key) is True


def test_capacity_enforced():
    store = SharedMemoryObjectStore(capacity_bytes=100, node="small")
    try:
        store.put(np.zeros(10, dtype=np.float32))  # 40 bytes
        with pytest.raises(ObjectStoreError):
            store.put(np.zeros(32, dtype=np.float32))  # 128 bytes > remaining
    finally:
        store.destroy()


def test_accounting_counters(store):
    k1 = store.put(np.zeros(25, dtype=np.float32))
    k2 = store.put(np.zeros(25, dtype=np.float32))
    assert store.object_count == 2
    assert store.bytes_in_use == 200
    assert store.total_puts == 2
    store.release(k1)
    store.release(k2)
    assert store.total_frees == 2
    assert store.object_count == 0


def test_size_of(store):
    key = store.put(np.zeros((3, 3), dtype=np.float64))
    assert store.size_of(key) == 72


def test_non_contiguous_input_is_handled(store):
    base = np.arange(20, dtype=np.float32).reshape(4, 5)
    sliced = base[:, ::2]  # non-contiguous
    key = store.put(sliced)
    np.testing.assert_array_equal(store.get(key), sliced)


def test_context_manager_destroys():
    with SharedMemoryObjectStore(node="cm") as s:
        s.put(np.zeros(5, dtype=np.float32))
        assert s.object_count == 1
    assert s.object_count == 0


def test_invalid_consumers(store):
    with pytest.raises(ObjectStoreError):
        store.put(np.zeros(1, dtype=np.float32), consumers=0)
