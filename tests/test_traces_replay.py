"""The arrival-driven serving loop: admission, overlap, SLO accounting,
chaos correlation, and byte-determinism."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.common.units import RESNET18_BYTES
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.traces.models import (
    AvailabilityTrace,
    Trace,
    TraceEvent,
    availability_trace,
    poisson_trace,
)
from repro.traces.replay import ChaosCorrelation, ReplayConfig, TraceReplayEngine

NODES = [f"node{i}" for i in range(6)]


def _platform(**overrides) -> AggregationPlatform:
    return AggregationPlatform(PlatformConfig.lifl(**overrides), node_names=NODES)


def _trace(rate: float = 20, horizon: float = 240.0, seed: int = 3) -> Trace:
    return poisson_trace(rate, horizon, seed=seed)


def _replay(trace=None, config=None, seed: int = 5, **kwargs) -> TraceReplayEngine:
    return TraceReplayEngine(
        _platform(),
        trace if trace is not None else _trace(),
        config or ReplayConfig(round_updates=6, nbytes=RESNET18_BYTES, slo_target_s=15.0),
        seed=seed,
        **kwargs,
    )


# ----------------------------------------------------------------- basics
def test_replay_serves_every_offered_round():
    trace = _trace()
    result = _replay(trace).run()
    row = result.row()
    assert row["rounds"] == len(trace)
    assert row["completed"] + row["rejected"] + row["aborted"] == len(trace)
    assert row["latency_p50_s"] > 0
    for rec in result.records:
        if not rec.rejected:
            assert rec.complete_at >= rec.admit_at >= rec.arrival_at
            assert rec.latency == pytest.approx(rec.queue_wait + rec.service)


def test_replay_is_byte_deterministic_in_its_seed():
    def fingerprint():
        result = _replay().run()
        return (
            result.row(),
            [
                (r.tenant, r.round_id, r.arrival_at, r.admit_at, r.complete_at,
                 r.rejected, r.aborted, tuple(r.participants))
                for r in result.records
            ],
        )

    assert fingerprint() == fingerprint()


def test_rounds_overlap_under_load():
    result = _replay().run()
    assert result.peak_inflight > 1
    assert result.rounds_overlapped


def test_mid_replay_rounds_measure_their_own_duration():
    """A round admitted at t=100 must report the same service time as the
    identical round admitted at t=0 — ACT is install-relative."""
    trace = Trace(
        events=[TraceEvent(at=0.0), TraceEvent(at=100.0, round_id=1)], horizon=200.0
    )
    # reuse off so the second round cannot run faster via the warm pool
    platform = AggregationPlatform(
        PlatformConfig.lifl(reuse=False, warm_idle_reserved_cores=0.0),
        node_names=NODES,
    )
    cfg = ReplayConfig(round_updates=6, arrival_spread_s=0.0, slo_target_s=30.0)
    result = TraceReplayEngine(platform, trace, cfg, seed=1).run()
    first, second = result.records
    assert second.admit_at == pytest.approx(100.0)
    assert second.service == pytest.approx(first.service)


def test_finish_round_normalizes_instance_stats_to_install_time():
    """A round installed at t=50 must settle with *identical* accounting
    (instance lifecycles, reserved CPU) to the same round run standalone
    at t=0 — stats are shifted onto the round's own clock."""
    from repro.sim.engine import Environment

    arrivals = [(0.4 * i, 1.0) for i in range(6)]
    ref = _platform().run_round(
        arrivals, RESNET18_BYTES, include_eval=False, record_timeline=False
    )

    platform = _platform()
    engine = platform.engine
    env = Environment()
    fabric = engine.build_fabric(env)
    env.run(until=50.0)
    updates, plan = platform.prepare_round(arrivals, RESNET18_BYTES)
    tenant = engine.install_round(env, fabric, updates, plan)
    env.run(until=tenant.top_done)
    shifted = engine.finish_round(tenant, start_time=50.0)

    assert shifted.act == pytest.approx(ref.act)
    assert shifted.cpu_reserved == pytest.approx(ref.cpu_reserved)
    assert len(shifted.instances) == len(ref.instances)
    for got, want in zip(shifted.instances, ref.instances):
        assert (got.agg_id, got.node, got.role) == (want.agg_id, want.node, want.role)
        assert got.created_at == pytest.approx(want.created_at)
        assert got.ready_at == pytest.approx(want.ready_at)
        assert got.finished_at == pytest.approx(want.finished_at)
        assert (got.cold_start, got.reused) == (want.cold_start, want.reused)
    for stats in shifted.instances:
        assert 0.0 <= stats.created_at <= stats.finished_at <= shifted.act + 1e-9


def test_replay_round_matches_standalone_round():
    """One admitted round is the same simulation as run_round on the same
    arrivals — the serving loop adds no hidden cost."""
    trace = Trace(events=[TraceEvent(at=0.0)], horizon=10.0)
    result = _replay(trace).run()
    rec = result.records[0]
    standalone = _platform().run_round(
        rec.participants, RESNET18_BYTES, include_eval=False, record_timeline=False
    )
    assert rec.service == pytest.approx(standalone.act)


def test_warm_pool_turns_over_across_served_rounds():
    platform = _platform()
    TraceReplayEngine(platform, _trace(), ReplayConfig(round_updates=6), seed=2).run()
    assert platform.engine.lifecycle.warm.total() > 0


# -------------------------------------------------------------- admission
def test_bounded_queue_rejects_overflow():
    cfg = ReplayConfig(round_updates=6, max_inflight=1, queue_limit=0, slo_target_s=15.0)
    row = _replay(config=cfg).run().row()
    assert row["rejected"] > 0
    assert row["completed"] + row["rejected"] == row["rounds"]


def test_queue_wait_is_measured_when_rounds_queue():
    cfg = ReplayConfig(round_updates=6, max_inflight=1, queue_limit=8, slo_target_s=15.0)
    row = _replay(config=cfg).run().row()
    assert row["queue_wait_p95_s"] > 0
    assert row["latency_p95_s"] > row["service_p95_s"]


def test_admission_and_queueing_hurt_attainment_monotonically():
    tight = _replay(config=ReplayConfig(round_updates=6, max_inflight=1, queue_limit=8, slo_target_s=10.0)).run().row()
    loose = _replay(config=ReplayConfig(round_updates=6, max_inflight=8, queue_limit=8, slo_target_s=10.0)).run().row()
    assert loose["slo_attainment"] >= tight["slo_attainment"]


# ----------------------------------------------------------- availability
def test_unformable_rounds_are_rejected_not_crashed():
    # nobody is ever available -> every round is unformable
    avail = AvailabilityTrace(horizon=240.0, windows={"c-0": ()})
    row = _replay(availability=avail).run().row()
    assert row["rejected"] == row["rounds"]
    assert row["completed"] == 0


def test_availability_thins_rounds():
    avail = availability_trace(
        4, 240.0, seed=9, mean_session=30.0, mean_gap=90.0
    )  # tiny churny population: rounds rarely fill to 6
    result = _replay(availability=avail).run()
    formed = [r for r in result.records if not r.rejected]
    assert formed, "some rounds should still form"
    assert all(r.updates <= 4 for r in formed)
    assert any(r.updates < 6 for r in formed)


def test_selector_routes_participation_through_over_provisioning():
    from repro.fl.model import model_spec
    from repro.fl.selector import Selector, SelectorConfig
    from repro.workloads.fedscale import MOBILE_PROFILE, make_population

    population = make_population(30, spec=model_spec("resnet18"), profile=MOBILE_PROFILE, seed=4)
    avail = availability_trace(
        30, 240.0, seed=4, mean_session=200.0, mean_gap=40.0, prefix=MOBILE_PROFILE.name
    )
    selector = Selector(SelectorConfig(aggregation_goal=5, over_provision=1.2))
    result = _replay(
        availability=avail,
        weights=population.weights(),
        selector=selector,
        clients=population.clients,
    ).run()
    formed = [r for r in result.records if not r.rejected]
    assert formed
    assert all(r.updates <= 6 for r in formed)  # ceil(5 * 1.2)
    # FedAvg weights flow from the population, not the uniform default
    assert any(w != 1.0 for r in formed for _, w in r.participants)


# ------------------------------------------------------------------ chaos
def test_chaos_waves_fire_only_in_availability_dips():
    avail = availability_trace(
        40, 240.0, seed=6, mean_session=60.0, mean_gap=60.0,
        day_night_amplitude=0.9, period=120.0,
    )
    chaos = ChaosCorrelation(dip_threshold=0.5, max_fraction=0.6)
    result = _replay(availability=avail, chaos=chaos).run()
    assert result.chaos_waves > 0
    assert result.clients_dropped > 0
    waved = [r for r in result.records if r.chaos_fraction > 0]
    for rec in waved:
        assert avail.availability_fraction(rec.arrival_at) < 0.5


def test_deep_dips_can_abort_rounds_without_crashing_the_replay():
    # 6 always-on clients in a 100-client population: fraction 0.06, so
    # every round gets a near-max dropout wave and quorum 0.6 is brittle.
    windows = {f"c-{i:03d}": ((0.0, 240.0),) if i < 6 else () for i in range(100)}
    avail = AvailabilityTrace(horizon=240.0, windows=windows)
    chaos = ChaosCorrelation(
        dip_threshold=0.9, max_fraction=0.95, wave_delay_s=0.0,
        quorum_fraction=0.6, heartbeat_timeout=1.0, sweep_interval=0.5,
    )
    cfg = ReplayConfig(round_updates=6, arrival_spread_s=20.0, slo_target_s=15.0)
    result = _replay(
        trace=_trace(rate=6, horizon=120.0), config=cfg,
        availability=avail, chaos=chaos, seed=11,
    ).run()
    row = result.row()
    assert row["aborted"] > 0, "deep waves should breach the quorum"
    assert row["aborted"] + row["completed"] + row["rejected"] == row["rounds"]
    assert row["slo_attainment"] < 1.0


def test_chaos_requires_availability():
    with pytest.raises(ConfigError):
        TraceReplayEngine(
            _platform(), _trace(), ReplayConfig(), chaos=ChaosCorrelation(), seed=1
        )


# ------------------------------------------------------------- validation
def test_replay_config_validation():
    for bad in (
        dict(round_updates=0),
        dict(max_inflight=0),
        dict(queue_limit=-1),
        dict(slo_target_s=0.0),
        dict(arrival_spread_s=-1.0),
        dict(nbytes=0.0),
    ):
        with pytest.raises(ConfigError):
            TraceReplayEngine(_platform(), _trace(), ReplayConfig(**bad))


def test_selector_needs_clients_and_availability():
    from repro.fl.selector import Selector, SelectorConfig

    selector = Selector(SelectorConfig(aggregation_goal=4))
    with pytest.raises(ConfigError):
        TraceReplayEngine(_platform(), _trace(), ReplayConfig(), selector=selector)
    with pytest.raises(ConfigError):
        TraceReplayEngine(
            _platform(), _trace(), ReplayConfig(), selector=selector, clients=[]
        )


def test_empty_trace_yields_empty_result():
    result = TraceReplayEngine(
        _platform(), Trace(events=[], horizon=10.0), ReplayConfig()
    ).run()
    assert result.records == []
    assert result.row()["rounds"] == 0


# ---------------------------------------------------- SoA population path
def _population(n=400, seed=5, horizon=300.0):
    from repro.fl.population import ClientPopulation

    return ClientPopulation.generate(n, seed=seed, horizon=horizon)


def test_population_replay_matches_client_list_replay():
    """The struct-of-arrays path draws the same participants, weights,
    offsets — hence the same rows — as the FLClient + AvailabilityTrace
    path over the equivalent population."""
    from repro.fl.selector import Selector, SelectorConfig
    from repro.workloads.fedscale import make_population

    pop = _population()
    ref = make_population(400, seed=5)
    sel = Selector(SelectorConfig(aggregation_goal=12, over_provision=1.0))
    trace = _trace(horizon=120.0)
    cfg = ReplayConfig(round_updates=12, nbytes=RESNET18_BYTES, slo_target_s=15.0)
    a = TraceReplayEngine(
        _platform(), trace, cfg, selector=sel, population=pop, seed=5
    ).run()
    b = TraceReplayEngine(
        _platform(),
        trace,
        cfg,
        availability=pop.to_availability_trace(),
        weights={pop.client_id(i): float(pop.num_samples[i]) for i in range(pop.size)},
        selector=sel,
        clients=ref.clients,
        seed=5,
    ).run()
    assert a.row() == b.row()
    for ra, rb in zip(a.records, b.records):
        assert ra.participants == rb.participants


def test_population_replay_shards_like_any_other():
    from functools import partial

    from repro.fl.selector import Selector, SelectorConfig

    pop = _population()
    sel = Selector(SelectorConfig(aggregation_goal=10, over_provision=1.0))
    trace = _trace(horizon=100.0)
    cfg = ReplayConfig(round_updates=10, nbytes=RESNET18_BYTES, slo_target_s=15.0)
    make = partial(
        TraceReplayEngine,
        None,
        trace,
        cfg,
        selector=sel,
        population=pop,
        seed=7,
        platform_factory=_platform,
    )
    assert make().run(shards=2, inline=True).row() == make().run().row()


def test_population_validation_rules():
    from repro.fl.selector import Selector, SelectorConfig

    pop = _population()
    sel = Selector(SelectorConfig(aggregation_goal=8))
    # population needs a selector
    with pytest.raises(ConfigError, match="selector"):
        TraceReplayEngine(_platform(), _trace(), population=pop)
    # mutually exclusive with a clients list
    with pytest.raises(ConfigError, match="mutually exclusive"):
        TraceReplayEngine(
            _platform(), _trace(), selector=sel, population=pop, clients=[]
        )
    # carries its own windows: no separate availability trace
    with pytest.raises(ConfigError, match="availability"):
        TraceReplayEngine(
            _platform(),
            _trace(),
            selector=sel,
            population=pop,
            availability=AvailabilityTrace(horizon=1.0),
        )
    # chaos correlation stays on the AvailabilityTrace path
    with pytest.raises(ConfigError, match="chaos"):
        TraceReplayEngine(
            _platform(), _trace(), selector=sel, population=pop,
            chaos=ChaosCorrelation(),
        )
    # windowless populations cannot drive availability-aware rounds
    with pytest.raises(ConfigError, match="windows"):
        TraceReplayEngine(
            _platform(), _trace(), selector=sel, population=_population(horizon=0.0)
        )
