"""Round-engine stage registry: resolution, extension, engine neutrality."""

from __future__ import annotations

import inspect

import pytest

from repro.common.errors import ConfigError
from repro.controlplane.hierarchy import AggregatorSpec, HierarchyPlan, Role
from repro.core import roundsim
from repro.core.platform import PlatformConfig
from repro.core.roundsim import RoundEngine
from repro.core.stages import (
    INGRESS_STAGES,
    LIFECYCLE_STAGES,
    TRANSFER_STAGES,
    GatewayIngress,
    IngressCosts,
    ServerfulBrokerIngress,
    ServerlessBrokerIngress,
    WarmPoolLifecycle,
    resolve_ingress,
    resolve_lifecycle,
    resolve_transfer,
)
from repro.core.updates import SimUpdate
from repro.dataplane.calibration import DEFAULT_CALIBRATION


def _one_node_plan() -> HierarchyPlan:
    plan = HierarchyPlan()
    plan.aggregators["t/top@node0"] = AggregatorSpec(
        "t/top@node0", Role.TOP, "node0", fan_in=2
    )
    plan.top_node = "node0"
    plan.validate()
    return plan


def _updates(n: int = 2, nbytes: float = 1e6) -> list[SimUpdate]:
    return [
        SimUpdate(uid=i, nbytes=nbytes, weight=1.0, arrival_time=float(i), node="node0", client_id=f"c{i}")
        for i in range(n)
    ]


def test_preset_ingress_resolution():
    assert isinstance(resolve_ingress(PlatformConfig.lifl()), GatewayIngress)
    assert isinstance(resolve_ingress(PlatformConfig.serverful()), ServerfulBrokerIngress)
    assert isinstance(resolve_ingress(PlatformConfig.serverless()), ServerlessBrokerIngress)
    assert isinstance(resolve_ingress(PlatformConfig.sl_h()), GatewayIngress)


def test_explicit_stage_key_overrides_derivation():
    cfg = PlatformConfig.lifl(ingress_stage="broker-sl")
    assert isinstance(resolve_ingress(cfg), ServerlessBrokerIngress)


def test_unknown_stage_key_raises():
    with pytest.raises(ConfigError, match="unknown ingress stage"):
        resolve_ingress(PlatformConfig.lifl(ingress_stage="nope"))
    with pytest.raises(ConfigError, match="unknown transfer stage"):
        resolve_transfer(PlatformConfig.lifl(transfer_stage="nope"))
    with pytest.raises(ConfigError, match="unknown lifecycle stage"):
        resolve_lifecycle(PlatformConfig.lifl(lifecycle_stage="nope"))


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigError, match="already registered"):
        INGRESS_STAGES.register("gateway")(GatewayIngress)


def test_registry_names_listed():
    assert {"gateway", "broker-sf", "broker-sl"} <= set(INGRESS_STAGES.names())
    assert "calibrated" in TRANSFER_STAGES.names()
    assert "warm-pool" in LIFECYCLE_STAGES.names()


def test_transfer_split_sums_to_pipeline_total():
    cfg = PlatformConfig.lifl()
    xfer = resolve_transfer(cfg).costs(cfg, DEFAULT_CALIBRATION, 1e7)
    assert xfer.inter_tx_latency + xfer.inter_rx_latency > 0
    assert xfer.inter_tx_latency == pytest.approx(xfer.inter_rx_latency)
    assert xfer.intra_latency > 0 and xfer.intra_cpu > 0


def test_roundsim_does_not_branch_on_ingress_kind():
    """The engine must resolve ingress behaviour through the registry, not
    by inspecting IngressKind."""
    source = inspect.getsource(roundsim)
    assert "IngressKind" not in source


def test_custom_ingress_stage_flows_through_engine():
    """A scenario-registered ingress variant is picked up by the engine via
    config alone — no roundsim changes."""
    registered = "free-ingress" in INGRESS_STAGES.names()
    if not registered:

        @INGRESS_STAGES.register("free-ingress")
        class FreeIngress(ServerlessBrokerIngress):
            """Zero-cost ingress: isolates the aggregation path."""

            name = "free-ingress"

            def costs(self, cfg, cal, nbytes):
                return IngressCosts(0.0, 0.0, 0.0, 0.0)

            def reserved_cpu(self, cfg, duration, nodes_used):
                return 0.0

    baseline_cfg = PlatformConfig.serverless(prewarm=True, ramp_delay=0.0)
    custom_cfg = PlatformConfig.serverless(
        prewarm=True, ramp_delay=0.0, ingress_stage="free-ingress"
    )
    plan = _one_node_plan()
    base = RoundEngine(baseline_cfg, ["node0"]).run_round(
        _updates(), plan, include_eval=False
    )
    free = RoundEngine(custom_cfg, ["node0"]).run_round(
        _updates(), plan, include_eval=False
    )
    assert free.act < base.act  # free ingress strictly shortens the round


def test_warm_pool_lifecycle_stocks_and_drains():
    lifecycle = WarmPoolLifecycle()
    lifecycle.begin_round()
    lifecycle.end_round(PlatformConfig.lifl(), {"node0": 3})
    assert lifecycle.warm.total() == 3
    assert lifecycle.warm.take("node0")
    assert lifecycle.warm.total() == 2
    assert not lifecycle.warm.take("node1")
    # no stocking when the config disables reuse
    lifecycle2 = WarmPoolLifecycle()
    lifecycle2.end_round(PlatformConfig.serverless(), {"node0": 3})
    assert lifecycle2.warm.total() == 0


def test_engine_exposes_stage_objects_and_warm_alias():
    engine = RoundEngine(PlatformConfig.lifl(), ["node0"])
    assert isinstance(engine.ingress, GatewayIngress)
    assert engine.warm is engine.lifecycle.warm


def test_lifecycle_stage_raising_mid_round_propagates():
    """A stage that blows up during instance creation must surface, not be
    swallowed by the event loop."""
    registered = "exploding" in LIFECYCLE_STAGES.names()
    if not registered:

        @LIFECYCLE_STAGES.register("exploding")
        class ExplodingLifecycle(WarmPoolLifecycle):
            name = "exploding"

            def ensure_created(self, inst, env, cfg, finished_on_node, admission=None):
                raise RuntimeError("stage failed mid-round")

    cfg = PlatformConfig.lifl(lifecycle_stage="exploding")
    with pytest.raises(RuntimeError, match="stage failed mid-round"):
        RoundEngine(cfg, ["node0"]).run_round(_updates(), _one_node_plan(), include_eval=False)


def test_base_lifecycle_cannot_restart_crashed_instances():
    stage = WarmPoolLifecycle()
    with pytest.raises(ConfigError, match="resilient"):
        stage.restart_instance(object(), None, PlatformConfig.lifl())


def test_resilient_lifecycle_restart_accounting_warm_then_cold():
    """A restart is funded from the warm pool when one is available on the
    node (instant takeover), otherwise it pays a cold start."""
    from repro.core.aggregator import AggregatorCosts, AggregatorInstance, InstanceState
    from repro.core.stages import ResilientLifecycle
    from repro.sim.engine import Environment

    env = Environment()
    inst = AggregatorInstance(
        env=env,
        agg_id="leaf0",
        node="node0",
        role="leaf",
        fan_in=2,
        costs=AggregatorCosts(0.0, 0.0, 0.1, 0.0, 2.0, 1.0),
        eager=True,
        charge_cpu=lambda comp, secs: None,
        on_output=lambda *a: None,
        record=None,
    )
    inst.ensure_created(reused=True)
    env.run(until=1.0)
    cfg = PlatformConfig.lifl(lifecycle_stage="resilient")
    stage = ResilientLifecycle()
    stage.warm.put("node0", 1)

    stage.restart_instance(inst, env, cfg)
    assert (stage.restarts, stage.warm_restarts, stage.cold_restarts) == (1, 1, 0)
    assert inst.state is InstanceState.READY  # warm takeover is instant
    assert stage.warm.total() == 0

    stage.restart_instance(inst, env, cfg)  # pool empty -> cold restart
    assert (stage.restarts, stage.warm_restarts, stage.cold_restarts) == (2, 1, 1)
    assert inst.state is InstanceState.STARTING
    env.run()
    assert inst.stats.restarts == 2

    # begin_round resets the per-round accounting but keeps the pool
    stage.warm.put("node0", 2)
    stage.begin_round()
    assert (stage.restarts, stage.warm_restarts, stage.cold_restarts) == (0, 0, 0)
    assert stage.warm.total() == 2


def test_resilient_stage_registered_and_resolves():
    from repro.core.stages import ResilientLifecycle

    assert "resilient" in LIFECYCLE_STAGES.names()
    stage = resolve_lifecycle(PlatformConfig.lifl(lifecycle_stage="resilient"))
    assert isinstance(stage, ResilientLifecycle)
    assert isinstance(stage, WarmPoolLifecycle)  # inherits warm-pool behaviour


def test_ramp_admission_is_round_start_relative():
    """The reactive ramp (§2.3) counts from the *round's* start, not the
    simulation epoch — a round admitted mid-replay at t=100 ramps its k-th
    instance at 100 + k*ramp, where the old sim-clock-relative form would
    have admitted everything instantly."""
    from repro.sim.engine import Environment

    cfg = PlatformConfig.serverless()  # ramp_delay 6, no prewarm, no reuse
    stage = WarmPoolLifecycle()
    env = Environment()
    created: list[float] = []

    class Inst:
        node = "node0"
        _created = False

        def ensure_created(self, reused=False):
            created.append(env.now)

    def driver():
        yield env.timeout(100.0)
        admission = stage.begin_round(env.now)
        for _ in range(3):
            stage.ensure_created(Inst(), env, cfg, {}, admission)

    env.process(driver())
    env.run()
    assert created == [100.0, 106.0, 112.0]


def test_ramp_admission_contexts_do_not_clobber():
    """Two overlapping rounds each carry their own RoundAdmission, so their
    per-node creation counters ramp independently."""
    from repro.sim.engine import Environment

    cfg = PlatformConfig.serverless()
    stage = WarmPoolLifecycle()
    env = Environment()
    created: dict[str, list[float]] = {"a": [], "b": []}

    def inst(tag: str):
        class Inst:
            node = "node0"
            _created = False

            def ensure_created(self, reused=False):
                created[tag].append(env.now)

        return Inst()

    def round_at(t0: float, tag: str):
        yield env.timeout(t0)
        admission = stage.begin_round(env.now)
        for _ in range(2):
            stage.ensure_created(inst(tag), env, cfg, {}, admission)

    env.process(round_at(10.0, "a"))
    env.process(round_at(13.0, "b"))
    env.run()
    assert created["a"] == [10.0, 16.0]
    assert created["b"] == [13.0, 19.0]


def test_coalesced_gateway_stage_registered():
    from repro.core.stages import CoalescedGatewayIngress

    assert "gateway-coalesced" in INGRESS_STAGES.names()
    stage = resolve_ingress(PlatformConfig.lifl(ingress_stage="gateway-coalesced"))
    assert isinstance(stage, CoalescedGatewayIngress)
    assert isinstance(stage, GatewayIngress)  # same admission resources


def test_coalesced_arrivals_spawn_at_identical_instants():
    """One walker process admits the whole batch at the same instants the
    per-update heap entries would have."""
    from repro.core.stages import CoalescedGatewayIngress
    from repro.sim.engine import Environment

    updates = _updates(6)
    for stage_cls in (GatewayIngress, CoalescedGatewayIngress):
        env = Environment()
        seen: dict[int, float] = {}

        def spawn(update, delay, env=env, seen=seen):
            def arrive(e=env, u=update, s=seen):
                yield e.timeout(delay)
                s[u.uid] = e.now

            return env.process(arrive())

        # default path spawns with delay=arrival_time; coalesced path
        # spawns with delay=0 at the walker's wake instant
        procs = stage_cls().install_arrivals(env, updates, spawn)
        env.run()
        assert len(procs) == len(updates)
        assert seen == {u.uid: u.arrival_time for u in updates}
