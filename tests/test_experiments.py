"""Experiment harness: each figure's runner produces the paper's shape."""

from __future__ import annotations

import pytest

from repro.experiments import (
    capacity,
    fig04_hierarchy_dataplane,
    fig07_dataplane,
    fig08_orchestration,
    fig13_queuing,
    overhead,
)
from repro.experiments.common import ratio


def test_ratio_guards_degenerate_denominators():
    assert ratio(6.0, 3.0) == 2.0
    assert ratio(1.0, 0.0) == float("inf")
    # 0/0 means "no signal on either side", not infinite advantage.
    assert ratio(0.0, 0.0) == 0.0
    assert ratio(0.0, 5.0) == 0.0


def test_fig04_ordering_nh_wh_lifl():
    rows = fig04_hierarchy_dataplane.run()
    by = {r.setting: r.round_seconds for r in rows}
    assert by["WH (kernel)"] < by["NH (kernel)"]  # hierarchy helps a little
    assert by["WH (LIFL)"] < by["WH (kernel)"]  # shm data plane helps a lot
    # Paper: 59.8 / 57 / 44.9 — absolute values within ~15%.
    assert by["NH (kernel)"] == pytest.approx(59.8, rel=0.15)
    assert by["WH (kernel)"] == pytest.approx(57.0, rel=0.15)
    assert by["WH (LIFL)"] == pytest.approx(44.9, rel=0.15)


def test_fig07_paper_ratios():
    rows = fig07_dataplane.run()
    ratios = fig07_dataplane.headline_ratios(rows)
    assert ratios["sf_over_lifl"] == pytest.approx(3.0, rel=0.1)
    assert ratios["sl_over_lifl"] == pytest.approx(5.8, rel=0.1)
    assert ratios["sl_over_sf"] == pytest.approx(2.0, rel=0.1)


def test_fig07_sl_breakdown_nonzero():
    rows = fig07_dataplane.run()
    sl = [r for r in rows if r.system == "SL"]
    assert all(r.sidecar_share_s > 0 and r.broker_share_s > 0 for r in sl)


@pytest.fixture(scope="module")
def fig8_rows():
    return fig08_orchestration.run()


def test_fig08_act_monotone_in_ablation(fig8_rows):
    order = ["SL-H", "+1", "+1+2", "+1+2+3", "+1+2+3+4"]
    for batch in (20, 60):
        acts = [
            next(r.act_s for r in fig8_rows if r.config == c and r.batch == batch)
            for c in order
        ]
        assert all(a >= b - 1e-6 for a, b in zip(acts, acts[1:])), (batch, acts)


def test_fig08_nodes_used_matches_paper(fig8_rows):
    """Fig. 8(d): LIFL packs 20/60/100 updates into 1/3/5 nodes; SL-H
    always spreads over 5."""
    for batch, expected in [(20, 1), (60, 3), (100, 5)]:
        lifl = next(r for r in fig8_rows if r.config == "+1+2+3+4" and r.batch == batch)
        assert lifl.nodes_used == expected
    for batch in (20, 60, 100):
        slh = next(r for r in fig8_rows if r.config == "SL-H" and r.batch == batch)
        assert slh.nodes_used == 5


def test_fig08_reuse_eliminates_creations(fig8_rows):
    for batch in (20, 60, 100):
        with_reuse = next(r for r in fig8_rows if r.config == "+1+2+3" and r.batch == batch)
        without = next(r for r in fig8_rows if r.config == "+1+2" and r.batch == batch)
        assert with_reuse.aggregators_created < without.aggregators_created


def test_fig08_placement_saves_cpu(fig8_rows):
    for batch in (20, 60):
        slh = next(r for r in fig8_rows if r.config == "SL-H" and r.batch == batch)
        p1 = next(r for r in fig8_rows if r.config == "+1" and r.batch == batch)
        assert slh.cpu_s / p1.cpu_s > 1.5  # paper: ~2x


def test_fig13_shape():
    rows = fig13_queuing.run()
    k = fig13_queuing.ratios_at_m3(rows)
    assert k["mem_slb_over_mono"] == pytest.approx(3.0)
    assert k["cpu_slb_over_lifl"] == pytest.approx(1.5, abs=0.15)
    assert k["cpu_sfmicro_over_lifl"] == pytest.approx(1.9, abs=0.15)
    assert k["delay_slb_over_lifl"] == pytest.approx(1.3, abs=0.15)
    assert k["delay_sfmicro_over_lifl"] == pytest.approx(1.7, abs=0.15)
    assert k["lifl_vs_mono_delay"] == pytest.approx(1.0, abs=0.1)


def test_overhead_within_paper_budgets():
    rows = overhead.run()
    by = {r.operation: r for r in rows}
    assert by["placement, 10K clients"].measured_ms < 17.0
    assert by["EWMA per estimate"].measured_ms < 0.2


def test_capacity_probe_estimates_mc_near_testbed_value():
    points = capacity.probe_node()
    mc = capacity.estimate_mc(points)
    assert mc == pytest.approx(20.0, rel=0.25)  # paper's MC_i = 20
    # E must inflate under overload:
    assert points[-1].mean_exec_time > 2 * points[0].mean_exec_time
