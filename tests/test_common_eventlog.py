"""Timeline event log."""

from __future__ import annotations

import pytest

from repro.common.eventlog import EventLog, TimelineEvent


def test_event_duration_and_validation():
    ev = TimelineEvent("Top", "agg", 1.0, 3.5)
    assert ev.duration == pytest.approx(2.5)
    with pytest.raises(ValueError):
        TimelineEvent("Top", "agg", 3.0, 1.0)


def test_record_and_query():
    log = EventLog()
    log.record("LF1", "network", 0.0, 1.0)
    log.record("LF1", "agg", 1.0, 2.0)
    log.record("Top", "agg", 2.0, 4.0)
    assert len(log) == 3
    assert len(log.for_actor("LF1")) == 2
    assert len(log.of_kind("agg")) == 2
    assert log.actors() == ["LF1", "Top"]
    assert log.span() == (0.0, 4.0)


def test_busy_time_sums_by_kind():
    log = EventLog()
    log.record("A", "agg", 0.0, 1.0)
    log.record("A", "agg", 2.0, 3.5)
    log.record("A", "network", 1.0, 2.0)
    assert log.busy_time("A") == pytest.approx(3.5)
    assert log.busy_time("A", "agg") == pytest.approx(2.5)


def test_empty_log_span_and_render():
    log = EventLog()
    assert log.span() == (0.0, 0.0)
    assert "empty" in log.render_ascii()


def test_render_ascii_has_row_per_actor():
    log = EventLog()
    log.record("Top", "agg", 0.0, 10.0)
    log.record("LF1", "network", 0.0, 5.0)
    art = log.render_ascii(width=20)
    lines = art.splitlines()
    assert any("Top" in line and "A" in line for line in lines)
    assert any("LF1" in line and "N" in line for line in lines)
