"""Warm-pool reuse (§5.3) and the Topology Abstraction Graph (App. D)."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.controlplane.hierarchy import Role, plan_hierarchy
from repro.controlplane.reuse import WarmPool
from repro.controlplane.tag import ChannelMechanism, TagGraph


def test_acquire_cold_then_reuse():
    pool = WarmPool()
    h1, cold = pool.acquire("node0", Role.LEAF)
    assert cold and pool.cold_starts == 1
    pool.release(h1)
    h2, cold2 = pool.acquire("node0", Role.MIDDLE)
    assert not cold2 and pool.reuses == 1
    assert h2 is h1
    assert h2.role is Role.MIDDLE  # converted, not restarted
    assert h2.generation == 1


def test_reuse_is_per_node():
    pool = WarmPool()
    h, _ = pool.acquire("node0", Role.LEAF)
    pool.release(h)
    _, cold = pool.acquire("node1", Role.LEAF)
    assert cold  # warm runtime on node0 cannot serve node1


def test_keep_warm_disabled_terminates():
    pool = WarmPool(keep_warm=False)
    h, _ = pool.acquire("node0", Role.LEAF)
    pool.release(h)
    assert pool.terminations == 1
    _, cold = pool.acquire("node0", Role.LEAF)
    assert cold


def test_lifo_reuse_order():
    pool = WarmPool()
    a, _ = pool.acquire("n", Role.LEAF)
    b, _ = pool.acquire("n", Role.LEAF)
    pool.release(a)
    pool.release(b)
    got, _ = pool.acquire("n", Role.MIDDLE)
    assert got is b  # most recently idled first


def test_prewarm_stocks_pool():
    pool = WarmPool()
    pool.prewarm("node0", 3)
    assert pool.idle_count("node0") == 3
    _, cold = pool.acquire("node0", Role.LEAF)
    assert not cold
    with pytest.raises(ConfigError):
        pool.prewarm("node0", -1)


def test_evict_node():
    pool = WarmPool()
    pool.prewarm("node0", 4)
    assert pool.evict_node("node0") == 4
    assert pool.idle_count("node0") == 0
    assert pool.total_idle() == 0


# ---- TAG ---------------------------------------------------------------

def test_tag_from_plan_channels_by_colocation():
    plan = plan_hierarchy({"node0": 4, "node1": 4})
    tag = TagGraph.from_plan(plan)
    shm, kernel = 0, 0
    for agg in plan.aggregators.values():
        if not agg.parent:
            continue
        ch = tag.channel(agg.agg_id, agg.parent)
        if ch.mechanism is ChannelMechanism.SHARED_MEMORY:
            shm += 1
        else:
            kernel += 1
    assert shm > 0 and kernel > 0  # intra-node shm, cross-node kernel


def test_tag_routes_match_plan():
    plan = plan_hierarchy({"node0": 8})
    tag = TagGraph.from_plan(plan)
    assert tag.routes() == plan.routes()


def test_tag_single_root_validation():
    plan = plan_hierarchy({"node0": 8, "node1": 2})
    tag = TagGraph.from_plan(plan)
    assert tag.validate_single_rooted() == plan.top.agg_id


def test_tag_shared_memory_fraction_higher_when_packed():
    packed = TagGraph.from_plan(plan_hierarchy({"node0": 20}))
    spread = TagGraph.from_plan(plan_hierarchy({f"node{i}": 4 for i in range(5)}))
    assert packed.shared_memory_fraction() == 1.0
    assert spread.shared_memory_fraction() < 1.0


def test_tag_affinity_groups_use_group_by():
    plan = plan_hierarchy({"node0": 8})
    tag = TagGraph.from_plan(plan)
    groups = tag.affinity_groups()
    assert "node0" in groups
    assert len(groups["node0"]) >= 2


def test_tag_manual_construction_and_errors():
    tag = TagGraph()
    tag.add_role("agg1", "aggregator", node="n0")
    tag.add_role("client1", "client")
    tag.add_channel("client1", "agg1")
    assert tag.role_of("agg1") == "aggregator"
    assert tag.channel("client1", "agg1").mechanism is ChannelMechanism.KERNEL
    with pytest.raises(ConfigError):
        tag.add_role("agg1", "aggregator")  # duplicate
    with pytest.raises(ConfigError):
        tag.add_role("x", "banana")  # bad role
    with pytest.raises(ConfigError):
        tag.add_channel("ghost", "agg1")
    with pytest.raises(ConfigError):
        tag.channel("agg1", "client1")  # no such edge
