"""Fig. 9/10 experiment shapes (trimmed rounds for test speed)."""

from __future__ import annotations

import pytest

from repro.experiments.fig09_fl_workloads import RESNET18_SETUP, run as run_fig09
from repro.experiments.fig10_timeseries import RESNET18_SETUP as TS18, run as run_fig10


@pytest.fixture(scope="module")
def r18_results():
    return run_fig09(RESNET18_SETUP, max_rounds=80)


def test_fig09_time_to_accuracy_ordering(r18_results):
    tta = {name: res.time_to_accuracy(0.70) for name, res in r18_results.items()}
    assert all(v is not None for v in tta.values())
    assert tta["LIFL"] < tta["SF"] < tta["SL"]


def test_fig09_ratios_in_paper_band(r18_results):
    tta = {name: res.time_to_accuracy(0.70) for name, res in r18_results.items()}
    assert tta["SF"] / tta["LIFL"] == pytest.approx(1.6, abs=0.35)
    assert tta["SL"] / tta["LIFL"] == pytest.approx(2.7, abs=0.6)


def test_fig09_cost_to_accuracy_ordering(r18_results):
    cta = {name: res.cost_to_accuracy(0.70) for name, res in r18_results.items()}
    assert cta["LIFL"] < cta["SF"] < cta["SL"]
    assert cta["SL"] / cta["LIFL"] > 4.0  # paper: >5x


def test_fig09_lifl_absolute_hours(r18_results):
    tta_h = r18_results["LIFL"].time_to_accuracy(0.70) / 3600
    assert tta_h == pytest.approx(0.9, abs=0.2)


def test_fig10_series_shapes():
    series = run_fig10(TS18, max_rounds=10)
    sf = series["SF"]
    lifl = series["LIFL"]
    # SF's active aggregators are flat at the always-on allocation.
    assert len({p.active_aggregators for p in sf}) == 1
    assert sf[0].active_aggregators == 60
    # LIFL scales with load (dozens of short-lived instances, not 60 fixed).
    assert all(p.active_aggregators < 60 for p in lifl)
    # CPU per round: SL >> SF > LIFL on average.
    mean = lambda pts: sum(p.cpu_per_round for p in pts) / len(pts)  # noqa: E731
    assert mean(series["SL"]) > mean(series["SF"]) > mean(series["LIFL"])


def test_fig10_arrival_rates_similar_across_systems():
    series = run_fig10(TS18, max_rounds=6)
    rates = {name: sum(p.arrivals_per_minute for p in pts) / len(pts) for name, pts in series.items()}
    base = rates["LIFL"]
    for name, rate in rates.items():
        assert rate == pytest.approx(base, rel=0.35), name
