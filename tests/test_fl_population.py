"""Struct-of-arrays population: byte-parity with the per-object path.

The contracts :mod:`repro.fl.population` promises (its module docstring):

* generation parity — ``ClientPopulation.generate`` reproduces
  ``make_population``'s speeds/sample counts draw for draw;
* draw parity — batched timing draws equal a loop of per-object
  ``FLClient`` calls against an identically-seeded generator;
* selection parity — ``Selector.select_population`` picks the same
  clients, in the same order, as ``select_available`` over the
  equivalent client list + availability trace;
* availability parity — CSR masks agree with the per-id window dict,
  and ``AvailabilityTrace``'s own vectorized mask/``available()`` fast
  path agrees with its scalar loop.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.fl.population import ClientPopulation
from repro.fl.selector import Selector, SelectorConfig
from repro.traces.models import availability_trace
from repro.workloads.fedscale import MOBILE_PROFILE, SERVER_PROFILE, make_population


def _pop_pair(n: int, seed: int, profile=MOBILE_PROFILE, horizon: float = 0.0):
    pop = ClientPopulation.generate(n, profile=profile, seed=seed, horizon=horizon)
    ref = make_population(n, profile=profile, seed=seed)
    return pop, ref


# ---- generation parity ----------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=400), seed=st.integers(0, 2**20))
def test_generate_matches_make_population(n: int, seed: int) -> None:
    pop, ref = _pop_pair(n, seed)
    assert np.array_equal(
        pop.speed_factors, np.array([c.config.speed_factor for c in ref.clients])
    )
    assert np.array_equal(
        pop.num_samples, np.array([ref.sample_counts[c.client_id] for c in ref.clients])
    )
    assert pop.ids() == [c.client_id for c in ref.clients]
    assert pop.hibernate_max == MOBILE_PROFILE.hibernate_max


def test_generate_server_profile_always_on() -> None:
    pop, ref = _pop_pair(50, seed=3, profile=SERVER_PROFILE)
    assert pop.hibernate_max == 0.0
    assert np.array_equal(
        pop.speed_factors, np.array([c.config.speed_factor for c in ref.clients])
    )
    # no windows -> always available
    assert pop.available_mask(123.0).all()


# ---- draw parity ----------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    seed=st.integers(0, 2**20),
    draw_seed=st.integers(0, 2**20),
)
def test_batched_draws_match_per_object_flclient(n, seed, draw_seed) -> None:
    pop, ref = _pop_pair(n, seed)
    idx = np.arange(n)
    r_vec, r_obj = make_rng(draw_seed, "t"), make_rng(draw_seed, "t")
    assert np.array_equal(
        pop.training_durations(r_vec, idx),
        np.array([c.training_duration(r_obj) for c in ref.clients]),
    )
    r_vec, r_obj = make_rng(draw_seed, "h"), make_rng(draw_seed, "h")
    assert np.array_equal(
        pop.hibernations(r_vec, idx),
        np.array([c.hibernation(r_obj) for c in ref.clients]),
    )


def test_always_on_hibernations_consume_no_stream() -> None:
    pop, _ = _pop_pair(20, seed=1, profile=SERVER_PROFILE)
    rng = make_rng(0, "x")
    before = rng.bit_generator.state
    assert not pop.hibernations(rng, np.arange(20)).any()
    assert rng.bit_generator.state == before


# ---- selection parity -----------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=300),
    goal=st.integers(min_value=1, max_value=60),
    seed=st.integers(0, 2**20),
    diversity=st.sampled_from(["uniform", "diverse"]),
)
def test_select_population_matches_select_available(n, goal, seed, diversity) -> None:
    pop, ref = _pop_pair(n, seed, horizon=400.0)
    if diversity == "diverse":
        # the per-object path reads FLClient.num_samples (1 without a
        # shard), so cross-path parity only holds for uniform selection;
        # exercise the diverse path against a manual pool instead
        sel = Selector(SelectorConfig(aggregation_goal=goal, diversity="diverse"))
        mask = pop.available_mask(10.0)
        if not mask.any():
            return
        r1, r2 = make_rng(seed, "s"), make_rng(seed, "s")
        picked = sel.select_population(pop, r1, mask)
        pool = np.flatnonzero(mask)
        w = np.maximum(1, pop.num_samples[pool]).astype(float)
        want = min(sel.target_count(), pool.size)
        expect = pool[r2.choice(pool.size, size=want, replace=False, p=w / w.sum())]
        assert np.array_equal(picked, expect)
        return
    sel = Selector(SelectorConfig(aggregation_goal=goal, over_provision=1.0))
    trace = pop.to_availability_trace()
    at = 10.0
    r1, r2 = make_rng(seed, "s"), make_rng(seed, "s")
    picked = sel.select_population(pop, r1, pop.available_mask(at))
    chosen = sel.select_available(ref.clients, r2, lambda cid: trace.is_available(cid, at))
    assert [pop.client_id(int(i)) for i in picked] == [c.client_id for c in chosen]


def test_select_population_empty_pool_is_unformable_round() -> None:
    pop, _ = _pop_pair(10, seed=2, horizon=50.0)
    picked = Selector(SelectorConfig(aggregation_goal=4)).select_population(
        pop, make_rng(0, "s"), np.zeros(10, dtype=bool)
    )
    assert picked.size == 0


# ---- availability parity --------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=150),
    seed=st.integers(0, 2**20),
    at=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
)
def test_available_mask_matches_window_dict(n, seed, at) -> None:
    pop = ClientPopulation.generate(n, seed=seed, horizon=450.0)
    trace = pop.to_availability_trace()
    expect = np.array([trace.is_available(pop.client_id(i), at) for i in range(n)])
    assert np.array_equal(pop.available_mask(at), expect)


def test_windows_cover_horizon_and_are_sorted() -> None:
    pop = ClientPopulation.generate(300, seed=9, horizon=800.0)
    off = pop.win_offsets
    assert off[-1] == pop.total_windows
    for i in range(pop.size):
        s = pop.win_start[off[i] : off[i + 1]]
        e = pop.win_end[off[i] : off[i + 1]]
        assert (e >= s).all()
        assert (s[1:] >= e[:-1]).all()  # disjoint, time-ordered
        assert (e <= 800.0).all()


def test_next_events_are_strictly_future_boundaries() -> None:
    pop = ClientPopulation.generate(120, seed=4, horizon=300.0)
    at = 42.0
    ne = pop.next_events(at)
    off = pop.win_offsets
    for i in range(pop.size):
        bounds = sorted(
            set(pop.win_start[off[i] : off[i + 1]]) | set(pop.win_end[off[i] : off[i + 1]])
        )
        expect = next((b for b in bounds if b > at), np.inf)
        assert ne[i] == expect


def test_advance_refreshes_state_arrays() -> None:
    pop = ClientPopulation.generate(60, seed=6, horizon=200.0)
    pop.advance(33.0)
    assert np.array_equal(pop.state.astype(bool), pop.available_mask(33.0))
    assert (pop.next_event_at[np.isfinite(pop.next_event_at)] > 33.0).all()


def test_availability_trace_vectorized_available_matches_loop() -> None:
    # >=512 clients takes the compiled fast path inside available()
    trace = availability_trace(600, horizon=250.0, seed=8)
    for at in (0.0, 60.0, 249.9, 400.0):
        fast = trace.available(at)
        slow = [cid for cid in trace.client_ids if trace.is_available(cid, at)]
        assert fast == slow
        mask = trace.available_mask(at)
        assert [trace.client_ids[int(i)] for i in np.flatnonzero(mask)] == slow


def test_generate_rejects_bad_inputs() -> None:
    with pytest.raises(ConfigError):
        ClientPopulation.generate(0)
