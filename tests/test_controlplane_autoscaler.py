"""EWMA estimator and the two autoscalers."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.controlplane.autoscaler import (
    EwmaEstimator,
    HierarchyAwareAutoscaler,
    ThresholdAutoscaler,
)
from repro.controlplane.hierarchy import Role


def test_ewma_recurrence_matches_paper():
    # Q_t = alpha * Q_{t-1} + (1 - alpha) * Q_t with alpha = 0.7
    est = EwmaEstimator(0.7)
    est.update(10.0)
    assert est.value == pytest.approx(10.0)  # first observation seeds
    est.update(20.0)
    assert est.value == pytest.approx(0.7 * 10 + 0.3 * 20)


def test_ewma_damps_spikes():
    est = EwmaEstimator(0.7)
    est.update(10.0)
    est.update(100.0)  # spike
    assert est.value < 40.0


def test_ewma_converges_to_constant_input():
    est = EwmaEstimator(0.7)
    for _ in range(60):
        est.update(42.0)
    assert est.value == pytest.approx(42.0, rel=1e-6)


def test_ewma_validation():
    with pytest.raises(ConfigError):
        EwmaEstimator(1.0)
    with pytest.raises(ConfigError):
        EwmaEstimator(-0.1)
    with pytest.raises(ConfigError):
        EwmaEstimator(0.5).update(-1.0)


def test_ewma_reset():
    est = EwmaEstimator()
    est.update(5.0)
    est.reset()
    assert not est.initialized
    assert est.value == 0.0


def test_autoscaler_observe_builds_queue_estimates():
    scaler = HierarchyAwareAutoscaler()
    q = scaler.observe("node0", arrival_rate=4.0, exec_time=2.0)
    assert q == pytest.approx(8.0)
    assert scaler.smoothed("node0") == pytest.approx(8.0)
    assert scaler.smoothed("never-seen") == 0.0


def test_autoscaler_replan_produces_hierarchy():
    scaler = HierarchyAwareAutoscaler(updates_per_leaf=2)
    scaler.observe_queue("node0", 8)
    scaler.observe_queue("node1", 4)
    plan = scaler.replan()
    assert len(plan.by_role(Role.TOP)) == 1
    leaf_capacity = sum(a.fan_in for a in plan.by_role(Role.LEAF))
    assert leaf_capacity == 12


def test_autoscaler_replan_round_ids_advance():
    scaler = HierarchyAwareAutoscaler()
    scaler.observe_queue("node0", 4)
    p0, p1 = scaler.replan(), scaler.replan()
    assert set(p0.aggregators).isdisjoint(p1.aggregators)


def test_autoscaler_config_validation():
    with pytest.raises(ConfigError):
        HierarchyAwareAutoscaler(updates_per_leaf=0)
    with pytest.raises(ConfigError):
        HierarchyAwareAutoscaler(replan_period=0.0)


def test_threshold_autoscaler_ceil_rule():
    ts = ThresholdAutoscaler(target_concurrency=2.0)
    assert ts.desired_replicas(0.0) == 0
    assert ts.desired_replicas(1.0) == 1
    assert ts.desired_replicas(7.0) == 4


def test_threshold_autoscaler_bounds():
    ts = ThresholdAutoscaler(target_concurrency=1.0, min_replicas=1, max_replicas=3)
    assert ts.desired_replicas(0.0) == 1
    assert ts.desired_replicas(99.0) == 3


def test_threshold_autoscaler_validation():
    with pytest.raises(ConfigError):
        ThresholdAutoscaler(target_concurrency=0.0)
    with pytest.raises(ConfigError):
        ThresholdAutoscaler(min_replicas=-1)
    with pytest.raises(ConfigError):
        ThresholdAutoscaler().desired_replicas(-1.0)
