"""Processor-sharing links and the fabric."""

from __future__ import annotations

import pytest

from repro.cluster.network import Fabric, ProcessorSharingLink
from repro.common.errors import SimulationError


def test_single_flow_takes_size_over_capacity(env):
    link = ProcessorSharingLink(env, capacity_bps=100.0)
    done = link.transfer(1000.0)
    env.run()
    assert done.processed
    assert env.now == pytest.approx(10.0)


def test_two_equal_flows_share_capacity(env):
    link = ProcessorSharingLink(env, capacity_bps=100.0)
    d1 = link.transfer(500.0)
    d2 = link.transfer(500.0)
    env.run()
    # Each gets 50 B/s; both finish at t = 10.
    assert d1.processed and d2.processed
    assert env.now == pytest.approx(10.0)


def test_late_joiner_slows_first_flow(env):
    link = ProcessorSharingLink(env, capacity_bps=100.0)
    finish = {}

    def start_second():
        yield env.timeout(5.0)
        done2 = link.transfer(250.0)
        yield done2
        finish["second"] = env.now

    def first():
        done1 = link.transfer(1000.0)
        yield done1
        finish["first"] = env.now

    env.process(first())
    env.process(start_second())
    env.run()
    # First sends 500 B alone by t=5; then shares: second needs 250 B at
    # 50 B/s => finishes at t=10; first has 250 B left at t=10, then full
    # rate: +2.5 s => 12.5.
    assert finish["second"] == pytest.approx(10.0, abs=1e-6)
    assert finish["first"] == pytest.approx(12.5, abs=1e-6)


def test_flow_conservation_many_flows(env):
    link = ProcessorSharingLink(env, capacity_bps=1000.0)
    sizes = [100.0, 400.0, 900.0, 1600.0]
    events = [link.transfer(s) for s in sizes]
    env.run()
    assert all(e.processed for e in events)
    # Total bytes over total time cannot exceed capacity.
    assert sum(sizes) / env.now <= 1000.0 + 1e-6
    assert link.active_flows == 0


def test_zero_or_negative_flow_rejected(env):
    link = ProcessorSharingLink(env, capacity_bps=10.0)
    with pytest.raises(SimulationError):
        link.transfer(0.0)
    with pytest.raises(SimulationError):
        ProcessorSharingLink(env, capacity_bps=0.0)


def test_fabric_transfer_uses_both_endpoints(env):
    fabric = Fabric(env, nic_bps=100.0)
    fabric.register_node("a")
    fabric.register_node("b")
    done = fabric.transfer("a", "b", 1000.0)
    env.run()
    assert done.processed
    assert env.now == pytest.approx(10.0)
    assert fabric.tx_link("a").bytes_carried > 0
    assert fabric.rx_link("b").bytes_carried > 0


def test_fabric_intra_node_transfer_is_free(env):
    fabric = Fabric(env, nic_bps=100.0)
    fabric.register_node("a")
    done = fabric.transfer("a", "a", 1e9)
    env.run()
    assert done.processed
    assert env.now == 0.0


def test_fabric_unknown_endpoint(env):
    fabric = Fabric(env, nic_bps=100.0)
    fabric.register_node("a")
    with pytest.raises(SimulationError):
        fabric.transfer("a", "nope", 10.0)


def test_fabric_duplicate_registration(env):
    fabric = Fabric(env, nic_bps=100.0)
    fabric.register_node("a")
    with pytest.raises(SimulationError):
        fabric.register_node("a")


def test_incast_contention_on_rx_link(env):
    """Four senders to one receiver: rx link is the bottleneck (Fig. 4's
    contention scenario)."""
    fabric = Fabric(env, nic_bps=100.0)
    for n in ("s1", "s2", "s3", "s4", "dst"):
        fabric.register_node(n)
    events = [fabric.transfer(f"s{i}", "dst", 250.0) for i in range(1, 5)]
    env.run()
    assert all(e.processed for e in events)
    # 1000 bytes through a 100 B/s rx link: 10 s, vs 2.5 s uncontended.
    assert env.now == pytest.approx(10.0, abs=1e-6)
