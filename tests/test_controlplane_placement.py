"""Placement: bin-packing policies, residual capacity, overhead budget."""

from __future__ import annotations

import time

import pytest

from repro.common.errors import CapacityExceededError, ConfigError
from repro.controlplane.placement import (
    BestFitPlacer,
    FirstFitPlacer,
    NodeCapacity,
    WorstFitPlacer,
    group_clients_by_node,
    make_placer,
)


def five_nodes(mc=20):
    return [NodeCapacity(f"node{i}", mc) for i in range(5)]


def test_residual_capacity_formula():
    n = NodeCapacity("n", max_capacity=20, arrival_rate=4.0, exec_time=2.0)
    assert n.in_flight == pytest.approx(8.0)
    assert n.residual == pytest.approx(12.0)


def test_node_capacity_validation():
    with pytest.raises(ConfigError):
        NodeCapacity("n", max_capacity=0)
    with pytest.raises(ConfigError):
        NodeCapacity("n", max_capacity=5, arrival_rate=-1.0)


def test_bestfit_packs_fig8d_shape():
    """The Fig. 8(d) result: 20/60/100 updates -> 1/3/5 nodes."""
    for n_updates, expected_nodes in [(20, 1), (60, 3), (100, 5)]:
        plan = BestFitPlacer().place(n_updates, five_nodes())
        assert plan.node_count == expected_nodes


def test_worstfit_spreads_like_least_connection():
    for n_updates in (20, 60, 100):
        plan = WorstFitPlacer().place(n_updates, five_nodes())
        assert plan.node_count == 5
        counts = list(plan.per_node.values())
        assert max(counts) - min(counts) <= 1  # even spread


def test_firstfit_fills_in_order():
    plan = FirstFitPlacer().place(30, five_nodes())
    assert plan.per_node["node0"] == 20
    assert plan.per_node["node1"] == 10
    assert plan.node_count == 2


def test_bestfit_prefers_fuller_node():
    nodes = [
        NodeCapacity("busy", 20, arrival_rate=15.0, exec_time=1.0),  # residual 5
        NodeCapacity("idle", 20),  # residual 20
    ]
    plan = BestFitPlacer().place(5, nodes)
    assert plan.per_node == {"busy": 5, "idle": 0}


def test_worstfit_prefers_emptier_node():
    nodes = [
        NodeCapacity("busy", 20, arrival_rate=15.0, exec_time=1.0),
        NodeCapacity("idle", 20),
    ]
    plan = WorstFitPlacer().place(5, nodes)
    assert plan.per_node == {"busy": 0, "idle": 5}


def test_overflow_round_robins_when_saturated():
    plan = BestFitPlacer().place(110, five_nodes())
    # 100 fit; 10 overflow spread round-robin.
    assert sum(plan.per_node.values()) == 110
    assert plan.node_count == 5


def test_cross_node_transfers_metric():
    plan = BestFitPlacer().place(60, five_nodes())
    assert plan.cross_node_transfers() == plan.node_count - 1


def test_assignments_align_with_input_order():
    plan = BestFitPlacer().place(3, five_nodes())
    assert len(plan.assignments) == 3
    groups = group_clients_by_node(["c1", "c2", "c3"], plan)
    assert sum(len(v) for v in groups.values()) == 3


def test_make_placer_factory():
    assert isinstance(make_placer("bestfit"), BestFitPlacer)
    assert isinstance(make_placer("least-connection"), WorstFitPlacer)
    with pytest.raises(ConfigError):
        make_placer("nope")


def test_no_nodes_raises():
    with pytest.raises(CapacityExceededError):
        BestFitPlacer().place(1, [])


def test_negative_updates_rejected():
    with pytest.raises(ConfigError):
        BestFitPlacer().place(-1, five_nodes())


def test_zero_updates_is_empty_plan():
    plan = BestFitPlacer().place(0, five_nodes())
    assert plan.assignments == []
    assert plan.node_count == 0


def test_placement_overhead_within_paper_budget():
    """§6.1: locality-aware placement < 17 ms at 10K clients."""
    nodes = [NodeCapacity(f"node{i}", 120) for i in range(100)]
    placer = BestFitPlacer()
    placer.place(10_000, nodes)  # warm up
    t0 = time.perf_counter()
    placer.place(10_000, nodes)
    elapsed_ms = (time.perf_counter() - t0) * 1e3
    assert elapsed_ms < 17.0


def test_policies_agree_on_totals():
    for policy in ("bestfit", "firstfit", "worstfit"):
        plan = make_placer(policy).place(60, five_nodes())
        assert sum(plan.per_node.values()) == 60
        assert all(v >= 0 for v in plan.per_node.values())
