"""Ablations of LIFL's design choices (DESIGN.md §5).

Not a paper figure — these probe the constants the paper fixes by fiat:
placement policy, EWMA α, updates-per-leaf I, eager vs lazy under arrival
spread, and reuse vs cold-start cost.
"""

from __future__ import annotations

import pytest

from repro.common.rng import make_rng
from repro.common.units import RESNET152_BYTES
from repro.controlplane.autoscaler import EwmaEstimator
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.workloads.arrival import concurrent_arrivals, staggered_arrivals


def run_platform(cfg, n=20, spread=3.0, rounds=2):
    plat = AggregationPlatform(cfg)
    arr = [(t, 1.0) for t in staggered_arrivals(n, spread)]
    result = None
    for _ in range(rounds):
        result = plat.run_round(arr, RESNET152_BYTES, include_eval=False)
    return result


@pytest.mark.parametrize("policy", ["bestfit", "firstfit", "worstfit"])
def test_bench_ablation_placement_policy(benchmark, policy):
    cfg = PlatformConfig.lifl(placement_policy=policy)
    result = benchmark.pedantic(run_platform, args=(cfg,), rounds=1, iterations=1)
    assert result.act > 0
    if policy == "bestfit":
        assert result.nodes_used == 1
    if policy == "worstfit":
        assert result.nodes_used == 5


@pytest.mark.parametrize("updates_per_leaf", [1, 2, 4, 8])
def test_bench_ablation_updates_per_leaf(benchmark, updates_per_leaf):
    """The paper's I=2: small I maximizes leaf parallelism (§5.2)."""
    cfg = PlatformConfig.lifl(updates_per_leaf=updates_per_leaf)
    result = benchmark.pedantic(run_platform, args=(cfg,), rounds=1, iterations=1)
    assert result.act > 0


def test_ablation_small_i_beats_huge_i():
    small = run_platform(PlatformConfig.lifl(updates_per_leaf=2), n=20, spread=6.0)
    huge = run_platform(PlatformConfig.lifl(updates_per_leaf=20), n=20, spread=6.0)
    assert small.act < huge.act  # one giant leaf serializes everything


@pytest.mark.parametrize("alpha", [0.0, 0.3, 0.7, 0.9])
def test_bench_ablation_ewma_alpha(benchmark, alpha):
    """α=0.7's damping behaviour vs alternatives on a spiky load trace."""
    rng = make_rng(0, f"ewma{alpha}")
    trace = [20.0 + (80.0 if rng.uniform() < 0.1 else 0.0) for _ in range(500)]

    def run():
        est = EwmaEstimator(alpha)
        for q in trace:
            est.update(q)
        return est.value

    value = benchmark(run)
    assert 20.0 <= value <= 100.0


def test_ablation_eager_gain_grows_with_spread():
    gains = []
    for spread in (0.0, 10.0):
        eager = run_platform(PlatformConfig.lifl(eager=True), n=16, spread=spread)
        lazy = run_platform(PlatformConfig.lifl(eager=False), n=16, spread=spread)
        gains.append(lazy.act - eager.act)
    assert gains[1] >= gains[0] - 1e-6


@pytest.mark.parametrize("cold_start", [0.5, 2.0, 8.0])
def test_bench_ablation_reuse_vs_cold_cost(benchmark, cold_start):
    """Reuse's benefit scales with the cold-start penalty it avoids."""
    no_reuse = PlatformConfig.lifl(reuse=False, prewarm=False, cold_start_latency=cold_start)
    with_reuse = PlatformConfig.lifl(cold_start_latency=cold_start)
    cold = benchmark.pedantic(run_platform, args=(no_reuse,), rounds=1, iterations=1)
    warm = run_platform(with_reuse)
    assert warm.act <= cold.act + 1e-6
