"""Engine micro-benchmarks and the stress50 macro-benchmark.

The micro-benchmarks time the kernel primitives (timer churn, process
spawn/finish, processor-sharing state changes, fabric contention); the
macro-benchmark runs the registry's ``stress50`` 900-update cells and
records wall-clock plus engine counters to ``BENCH_engine.json`` at the
repository root (label ``"macro-bench"``; re-runs replace the entry, so
the committed trajectory labels are preserved).

Run with::

    PYTHONPATH=src pytest benchmarks/test_bench_engine.py --benchmark-only -s
"""

from __future__ import annotations

import os

from repro.perf import bench
from repro.perf.counters import collect
from repro.sim.engine import Environment

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_engine.json")


def test_bench_engine_timer_churn(benchmark):
    env = benchmark(bench.timer_churn)
    assert env.events_processed == 20_000
    assert len(env._queue) == 0


def test_bench_engine_process_churn(benchmark):
    env = benchmark(bench.process_churn)
    # One Initialize + one timeout per process; synchronous completion
    # schedules no terminal event.
    assert env.heap_pushes == 2 * 5_000


def test_bench_engine_ps_link_churn(benchmark):
    env = benchmark(bench.ps_link_churn)
    assert env.events_processed > 0
    # Dead timers are popped lazily, never processed.
    assert env.events_processed == env.heap_pops - env.dead_timer_skips


def test_bench_engine_fabric_churn(benchmark):
    env = benchmark(bench.fabric_churn)
    assert env.events_processed > 0


def test_bench_stress50_macro(benchmark):
    """The acceptance macro-benchmark: one warm+measured 900-update cell
    per system, recorded into BENCH_engine.json."""
    from repro.experiments.stress50 import run_cell

    def both_systems():
        with collect() as perf:
            lifl = run_cell("LIFL", 900)
            slh = run_cell("SL-H", 900)
        return lifl, slh, perf.counters()

    lifl, slh, counters = benchmark.pedantic(both_systems, rounds=3, iterations=1)
    assert lifl["act_s"] < slh["act_s"]  # LIFL stays ahead at scale
    assert counters.events_processed > 0

    metrics = bench.run_macro_stress50(repeat=1)
    bench.record_run(BENCH_JSON, "macro-bench", {"macro_stress50": metrics})
    print(f"\nstress50 macro: LIFL {metrics['LIFL']['seconds']*1e3:.1f} ms, "
          f"SL-H {metrics['SL-H']['seconds']*1e3:.1f} ms (recorded in BENCH_engine.json)")


def test_engine_counters_conserve_heap_traffic():
    """Not a timing benchmark: structural check that pushes == pops at
    quiescence and processed+dead == pops, on a mixed workload."""
    env = Environment()

    def worker(i):
        yield env.timeout(i * 0.1)

    for i in range(100):
        env.process(worker(i))
    env.run()
    assert env.heap_pushes == env.heap_pops
    assert env.events_processed + env.dead_timer_skips == env.heap_pops
