"""Fig. 7(a)/(b): intra-node transfer latency and CPU per system."""

from __future__ import annotations

import pytest

from repro.common.units import RESNET152_BYTES
from repro.dataplane.pipelines import PipelineKind, intra_node_pipeline
from repro.experiments import fig07_dataplane as fig7


@pytest.fixture(scope="module")
def rows():
    return fig7.run()


def test_bench_fig07_table(benchmark, rows):
    out = benchmark(fig7.run)
    ratios = fig7.headline_ratios(out)
    assert 2.5 < ratios["sf_over_lifl"] < 3.5
    assert 5.0 < ratios["sl_over_lifl"] < 6.5


@pytest.mark.parametrize("kind", list(PipelineKind))
def test_bench_fig07_single_transfer_cost(benchmark, kind):
    """Micro-cost of evaluating one pipeline (the harness itself)."""
    pipeline = intra_node_pipeline(kind)
    result = benchmark(pipeline.cost, RESNET152_BYTES)
    assert result.latency > 0


def test_fig07_report(rows, capsys):
    with capsys.disabled():
        print("\n[Fig 7a/b] intra-node transfer (lat s / Gcycles)")
        for r in rows:
            print(f"  {r.model:11s} {r.system:4s} {r.latency_s:6.3f}s  {r.gcycles:6.2f}Gc")
