"""Benchmark-suite configuration.

Each ``test_bench_*`` module regenerates one paper table/figure (see
DESIGN.md §3).  Benchmarks both *measure* (pytest-benchmark timings of the
regeneration) and *verify* (assert the paper's qualitative shape on the
produced rows), and print the paper-style table once per module so
``pytest benchmarks/ --benchmark-only -s`` doubles as the results report.
"""
