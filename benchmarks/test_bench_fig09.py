"""Fig. 9: time-to-accuracy / cost-to-accuracy for both FL workloads."""

from __future__ import annotations

import pytest

from repro.experiments import fig09_fl_workloads as fig9


@pytest.fixture(scope="module")
def r18():
    return fig9.run(fig9.RESNET18_SETUP)


@pytest.fixture(scope="module")
def r152():
    return fig9.run(fig9.RESNET152_SETUP)


def test_bench_fig09_resnet18(benchmark, r18):
    out = benchmark.pedantic(fig9.run, args=(fig9.RESNET18_SETUP,), rounds=1, iterations=1)
    tta = {k: v.time_to_accuracy(0.70) for k, v in out.items()}
    assert tta["LIFL"] < tta["SF"] < tta["SL"]


def test_bench_fig09_resnet152(benchmark, r152):
    out = benchmark.pedantic(fig9.run, args=(fig9.RESNET152_SETUP,), rounds=1, iterations=1)
    tta = {k: v.time_to_accuracy(0.70) for k, v in out.items()}
    assert tta["LIFL"] < tta["SF"] < tta["SL"]


def test_fig09_report(r18, r152, capsys):
    with capsys.disabled():
        for tag, results in [("ResNet-18", r18), ("ResNet-152", r152)]:
            print(f"\n[Fig 9] {tag} to 70% accuracy (paper: {fig9.PAPER[tag]})")
            for name, res in results.items():
                tta = res.time_to_accuracy(0.70) / 3600
                cta = res.cost_to_accuracy(0.70) / 3600
                print(f"  {name:5s} tta={tta:5.2f}h  cpu={cta:6.2f}h  rounds={res.rounds}")
