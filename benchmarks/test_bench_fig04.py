"""Fig. 4 / Fig. 7(c): hierarchy on kernel vs LIFL data plane."""

from __future__ import annotations

import pytest

from repro.experiments import fig04_hierarchy_dataplane as fig4


@pytest.fixture(scope="module")
def rows():
    return fig4.run()


def test_bench_fig04_round_times(benchmark, rows):
    out = benchmark(fig4.run)
    by = {r.setting: r.round_seconds for r in out}
    assert by["WH (LIFL)"] < by["WH (kernel)"] < by["NH (kernel)"]


def test_fig04_report(rows, capsys):
    by = {r.setting: r.round_seconds for r in rows}
    with capsys.disabled():
        print("\n[Fig 4 / 7c] per-round seconds (paper: NH 59.8, WH 57, LIFL 44.9)")
        for name, secs in by.items():
            print(f"  {name:12s} {secs:6.1f}s")
