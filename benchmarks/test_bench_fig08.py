"""Fig. 8(a)-(d): orchestration ablation — ACT, CPU, creations, nodes."""

from __future__ import annotations

import pytest

from repro.experiments import fig08_orchestration as fig8


@pytest.fixture(scope="module")
def rows():
    return fig8.run()


def test_bench_fig08_ablation(benchmark, rows):
    out = benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    # full-LIFL is the fastest config at every batch size
    for batch in fig8.BATCHES:
        acts = {r.config: r.act_s for r in out if r.batch == batch}
        assert min(acts, key=acts.get) == "+1+2+3+4"


def test_fig08_report(rows, capsys):
    with capsys.disabled():
        print("\n[Fig 8] config, batch -> ACT s / CPU s / created / nodes")
        for r in rows:
            print(
                f"  {r.config:9s} n={r.batch:3d}  ACT={r.act_s:5.1f}s "
                f"CPU={r.cpu_s:6.0f}s created={r.aggregators_created:2d} nodes={r.nodes_used}"
            )
        print(
            f"  SL-H/+1 @20 = {fig8.act_ratio(rows, 'SL-H', '+1', 20):.2f}x (paper 2.1x), "
            f"@60 = {fig8.act_ratio(rows, 'SL-H', '+1', 60):.2f}x (paper 1.13x)"
        )
