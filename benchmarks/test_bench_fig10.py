"""Fig. 10: arrival-rate / active-aggregator / CPU-per-round time series."""

from __future__ import annotations

import pytest

from repro.experiments import fig10_timeseries as fig10


@pytest.fixture(scope="module")
def series18():
    return fig10.run(fig10.RESNET18_SETUP, max_rounds=40)


def test_bench_fig10_series(benchmark, series18):
    out = benchmark.pedantic(
        fig10.run, args=(fig10.RESNET18_SETUP,), kwargs={"max_rounds": 20}, rounds=1, iterations=1
    )
    assert set(out) == {"LIFL", "SF", "SL"}
    sf = out["SF"]
    assert len({p.active_aggregators for p in sf}) == 1  # always-on, flat


def test_fig10_report(series18, capsys):
    with capsys.disabled():
        print("\n[Fig 10] ResNet-18 means over 40 rounds")
        for name, a, b, c in fig10.summarize(series18):
            print(f"  {name:5s} arrivals/min={a:>4s} active-aggs={b:>3s} CPU/round={c:>5s}s")
