"""Fig. 13 / Appendix F: message-queuing overheads of the Fig. 5 designs."""

from __future__ import annotations

import pytest

from repro.common.units import RESNET152_BYTES
from repro.dataplane.pipelines import QueuingDesign, queuing_pipeline
from repro.experiments import fig13_queuing as fig13


@pytest.fixture(scope="module")
def rows():
    return fig13.run()


def test_bench_fig13_table(benchmark, rows):
    out = benchmark(fig13.run)
    k = fig13.ratios_at_m3(out)
    assert k["mem_slb_over_mono"] == pytest.approx(3.0)


@pytest.mark.parametrize("design", list(QueuingDesign))
def test_bench_fig13_single_design(benchmark, design):
    pipeline = queuing_pipeline(design)
    result = benchmark(pipeline.cost, RESNET152_BYTES)
    assert result.buffer_copies >= 1


def test_fig13_report(rows, capsys):
    with capsys.disabled():
        print("\n[Fig 13] queuing designs (CPU s / copies / delay s)")
        for r in rows:
            print(f"  {r.model:10s} {r.design:8s} {r.cpu_s:5.2f}  {r.memory_copies}  {r.delay_s:5.2f}")
