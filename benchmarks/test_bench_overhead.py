"""§6.1 orchestration overheads + Appendix E capacity probe."""

from __future__ import annotations

import pytest

from repro.controlplane.autoscaler import EwmaEstimator
from repro.controlplane.placement import BestFitPlacer, NodeCapacity
from repro.experiments import capacity


@pytest.fixture(scope="module")
def big_fleet():
    return [NodeCapacity(f"node{i}", 120) for i in range(100)]


def test_bench_placement_10k_clients(benchmark, big_fleet):
    """Paper budget: < 17 ms for 10K clients."""
    placer = BestFitPlacer()
    plan = benchmark(placer.place, 10_000, big_fleet)
    assert sum(plan.per_node.values()) == 10_000
    assert benchmark.stats.stats.mean < 0.017


def test_bench_placement_1k_clients(benchmark, big_fleet):
    placer = BestFitPlacer()
    benchmark(placer.place, 1_000, big_fleet)
    assert benchmark.stats.stats.mean < 0.017


def test_bench_ewma_estimate(benchmark):
    """Paper: 0.2 ms per estimate."""
    est = EwmaEstimator(0.7)
    benchmark(est.update, 12.0)
    assert benchmark.stats.stats.mean < 0.2e-3


def test_bench_capacity_probe(benchmark):
    """Appendix E: MC estimation lands near the testbed's 20."""
    points = benchmark.pedantic(capacity.probe_node, rounds=1, iterations=1)
    assert capacity.estimate_mc(points) == pytest.approx(20.0, rel=0.25)
